// Package egalito is the Egalito-like comparison reassembler (§4.1.3): a
// metadata-driven, layout-agnostic rewriter. It fixes the original data
// layout (solution ② of Table 1) and relies on call-frame information for
// function boundaries. Its policies reproduce the published failure modes
// of the real tool organically:
//
//   - binaries without .eh_frame (or outside its model: C++ exception
//     tables, overlapping code interpretations, ambiguous dispatch
//     bases) are rejected with assertion failures (the ~5% completion
//     gap of §4.2.2);
//   - every RIP reference into the text section is symbolized as a code
//     label, so the temporary pointers of composite expressions that
//     target mid-function code (Figure 2 / S7) silently break once code
//     moves;
//   - jump tables are resized by the preceding bounds comparison when one
//     exists, and otherwise over-read — and the entries are rewritten IN
//     PLACE in the preserved read-only data (no isolation, §3.5.1), so
//     over-read entries corrupt adjacent constants.
package egalito

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cfg"
	"repro/internal/elfx"
	"repro/internal/emit"
	"repro/internal/repair"
	"repro/internal/serialize"
)

// Tool is the Egalito-like rewriter.
type Tool struct{}

// New returns the tool.
func New() *Tool { return &Tool{} }

// Name implements baseline.Rewriter.
func (t *Tool) Name() string { return "egalito" }

// Rewrite implements baseline.Rewriter.
func (t *Tool) Rewrite(bin []byte) (*baseline.Result, error) {
	f, err := elfx.Read(bin)
	if err != nil {
		return nil, err
	}
	if f.Section(".eh_frame") == nil {
		return nil, fmt.Errorf("egalito: assertion failed: no unwind information")
	}
	// C++ exception tables are outside the model: the LSDA landing-pad
	// encoding is not parsed, so moving code would silently strand the
	// pads. The real tool aborts on such inputs (§4.2.2); so do we.
	if f.Section(".gcc_except_table") != nil {
		return nil, fmt.Errorf("egalito: assertion failed: C++ exception tables unsupported")
	}
	g, err := cfg.Build(f, cfg.Options{
		UseEhFrame: true,
		Bounds:     cfg.BoundsCmp,
	})
	if err != nil {
		return nil, fmt.Errorf("egalito: %w", err)
	}
	if err := baseline.OverlapError(g); err != nil {
		return nil, fmt.Errorf("egalito: assertion failed: %w", err)
	}
	for _, tbl := range g.Tables {
		if tbl.MultiBase() {
			return nil, fmt.Errorf("egalito: assertion failed: ambiguous jump table base at %#x", tbl.JmpAddr)
		}
	}

	entries, err := serialize.Serialize(g)
	if err != nil {
		return nil, fmt.Errorf("egalito: %w", err)
	}
	index := baseline.IndexByAddr(entries)

	// Pointer policy: data layout is fixed, so data references are
	// pinned; but ANY reference into the text section is assumed to be a
	// code pointer and symbolized — including Figure 2's temporary
	// pointers, which is exactly the S7 unsoundness of Table 1.
	sets := make(map[string]uint64)
	for i := range entries {
		e := &entries[i]
		if e.Synth || e.Target != "" {
			continue
		}
		m, ok := e.Inst.MemArg()
		if !ok || !m.Rip {
			continue
		}
		tgt, ok := e.Inst.RipTarget(e.Addr, e.Size)
		if !ok {
			continue
		}
		if tgt >= g.TextStart && tgt < g.TextEnd {
			if _, isBlock := g.Blocks[tgt]; isBlock {
				e.Target = serialize.LabelFor(tgt)
				continue
			}
			lbl, ok := baseline.AttachLabelAt(entries, index, tgt)
			if !ok {
				return nil, fmt.Errorf("egalito: assertion failed: code reference to non-boundary %#x", tgt)
			}
			e.Target = lbl
			continue
		}
		lbl := repair.OrigLabel(tgt)
		sets[lbl] = tgt
		e.Target = lbl
	}

	// Jump tables: rewrite entries in place within the preserved data.
	var patches []emit.TablePatch
	patched := map[uint64]bool{}
	for _, tbl := range g.Tables {
		base := tbl.Bases[0]
		if patched[base] {
			continue
		}
		patched[base] = true
		for k, tgt := range tbl.Targets[base] {
			plus := serialize.TrapLabel
			if _, ok := g.Blocks[tgt]; ok {
				plus = serialize.LabelFor(tgt)
			}
			patches = append(patches, emit.TablePatch{
				Addr: base + uint64(4*k),
				Plus: plus,
				Base: base,
			})
		}
	}

	out, _, err := emit.Emit(emit.Input{
		Graph:        g,
		Entries:      entries,
		Sets:         sets,
		TablePatches: patches,
	})
	if err != nil {
		return nil, fmt.Errorf("egalito: %w", err)
	}
	return &baseline.Result{Binary: out}, nil
}

var _ baseline.Rewriter = (*Tool)(nil)
