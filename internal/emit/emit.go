// Package emit implements SURI's Emitter (§3.6): it assembles S' into new
// code/data sections, appends them to the original binary while keeping
// every original section at its original virtual address (Figure 7),
// makes the original code section non-executable, retargets relocation
// entries whose addends are code pointers, and moves the ELF entry point
// into the copied code.
package emit

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/elfx"
	"repro/internal/harden"
	"repro/internal/obs"
	"repro/internal/serialize"
)

// Input bundles everything the emitter needs.
type Input struct {
	Graph      *cfg.Graph
	Entries    []serialize.Entry // S' (repaired, symbolized, instrumented)
	TableItems []asm.Item        // isolated jump tables
	InstrItems []asm.Item        // instrumentation payload (.suri.instr)
	Sets       map[string]uint64 // pinned original-layout labels

	// TablePatches rewrite 4-byte jump-table entries in place inside the
	// preserved original data (solution-②-style tools without table
	// isolation): the word at Addr becomes symbol(Plus) - Base.
	TablePatches []TablePatch

	// Obs, if set, receives emission metrics (assembler relaxation
	// rounds, emitted bytes). Nil disables collection at zero cost.
	Obs *obs.Collector

	// Legacy assembles with the pre-optimization (full re-measure per
	// relaxation round) assembler — the paired-benchmark baseline.
	Legacy bool
}

// TablePatch is one in-place jump-table entry rewrite.
type TablePatch struct {
	Addr uint64
	Plus string
	Base uint64
}

// Layout reports where the new sections landed.
type Layout struct {
	NewTextAddr   uint64
	NewTextSize   uint64
	NewRodataAddr uint64
	NewRodataSize uint64
	InstrAddr     uint64 // writable instrumentation payload (.suri.instr)
	InstrSize     uint64
	NewEntry      uint64
	AdjustedRelas int

	// RelaxRounds is how many layout passes branch relaxation took.
	RelaxRounds int
}

// RelaxRoundBounds are the histogram buckets for branch-relaxation
// convergence (asm.relax_rounds).
var RelaxRoundBounds = []int64{1, 2, 4, 8, 16, 32}

// Emit produces the rewritten binary.
func Emit(in Input) ([]byte, *Layout, error) {
	orig := in.Graph.File
	newBase := alignUp(orig.MaxVaddr(), 0x10000)

	prog := &asm.Program{}
	for name, addr := range in.Sets {
		prog.Sets = append(prog.Sets, asm.Set{Name: name, Addr: addr})
	}
	sort.Slice(prog.Sets, func(i, j int) bool { return prog.Sets[i].Name < prog.Sets[j].Name })

	text := prog.Section(".suri.text", asm.Alloc|asm.Exec)
	text.Align = elfx.PageSize
	text.Addr = newBase
	text.HasAddr = true
	for _, e := range in.Entries {
		for _, l := range e.Labels {
			text.L(l)
		}
		ins := asm.Ins{X: e.Inst, Sym: e.Target, Add: e.Addend,
			DispPlus: e.DiffPlus, DispMinus: e.DiffMinus}
		text.Items = append(text.Items, ins)
	}

	ro := prog.Section(".suri.rodata", asm.Alloc)
	ro.Align = elfx.PageSize
	ro.Items = in.TableItems
	if len(ro.Items) == 0 {
		ro.D8(0) // keep the section non-empty for a stable layout
	}

	// Instrumentation payload: a writable zero-initialized region the
	// inserted code addresses RIP-relatively. Appended last so layouts
	// without instrumentation are byte-identical to before.
	if len(in.InstrItems) > 0 {
		id := prog.Section(".suri.instr", asm.Alloc|asm.Write)
		id.Align = elfx.PageSize
		id.Items = in.InstrItems
	}

	if err := harden.Inject(harden.FPEmitAssemble); err != nil {
		return nil, nil, fmt.Errorf("emit: %w", err)
	}
	assemble := asm.Assemble
	if in.Legacy {
		assemble = asm.AssembleLegacy
	}
	res, err := assemble(prog, newBase)
	if err != nil {
		return nil, nil, fmt.Errorf("emit: assembling S': %w", err)
	}
	in.Obs.Metrics().Histogram("asm.relax_rounds", RelaxRoundBounds).Observe(int64(res.RelaxRounds))
	if len(res.Relocs) != 0 {
		return nil, nil, fmt.Errorf("emit: S' produced %d relocations; new code must be position-independent", len(res.Relocs))
	}

	// newAddrOf maps an original code address to its copied location.
	newAddrOf := func(old uint64) (uint64, bool) {
		v, ok := res.Symbol(serialize.LabelFor(old))
		return v, ok
	}

	out := &elfx.File{Type: orig.Type}

	// Original sections, layout-preserved. The original executable
	// section loses its exec flag (it remains mapped read-only so pinned
	// pointers still resolve).
	adjusted := 0
	for _, s := range orig.Sections {
		if s.Flags&elfx.SHFAlloc == 0 {
			continue // drop non-alloc debug baggage
		}
		ns := *s
		if ns.Flags&elfx.SHFExecinstr != 0 {
			ns.Flags &^= elfx.SHFExecinstr
		}
		if ns.Name == ".rela.dyn" && ns.Data != nil {
			// Retarget relocated code pointers into the copied code
			// (only endbr64-targeting addends are code pointers, §3.4).
			relas := elfx.ParseRela(ns.Data)
			for i := range relas {
				if relas[i].Type != elfx.RX8664Relative {
					continue
				}
				t := uint64(relas[i].Addend)
				if cfg.IsEndbr(orig, t) {
					if na, ok := newAddrOf(t); ok {
						relas[i].Addend = int64(na)
						adjusted++
					}
				}
			}
			ns.Data = elfx.BuildRela(relas)
		} else if ns.Data != nil {
			ns.Data = append([]byte(nil), ns.Data...)
		}
		for _, p := range in.TablePatches {
			if ns.Data == nil || p.Addr < ns.Addr || p.Addr+4 > ns.Addr+ns.Size {
				continue
			}
			v, ok := res.Symbol(p.Plus)
			if !ok {
				return nil, nil, fmt.Errorf("emit: table patch target %q undefined", p.Plus)
			}
			diff := int64(v) - int64(p.Base)
			if diff < -1<<31 || diff > 1<<31-1 {
				return nil, nil, fmt.Errorf("emit: table patch at %#x out of range", p.Addr)
			}
			off := p.Addr - ns.Addr
			ns.Data[off] = byte(diff)
			ns.Data[off+1] = byte(diff >> 8)
			ns.Data[off+2] = byte(diff >> 16)
			ns.Data[off+3] = byte(diff >> 24)
		}
		out.Sections = append(out.Sections, &ns)
	}

	// New sections from the assembled S'.
	layout := &Layout{AdjustedRelas: adjusted, RelaxRounds: res.RelaxRounds}
	for _, s := range res.Sections {
		sec := &elfx.Section{
			Name:  s.Name,
			Type:  elfx.SHTProgbits,
			Flags: elfx.SHFAlloc,
			Addr:  s.Addr,
			Size:  s.Size,
			Align: s.Align,
			Data:  s.Data,
		}
		switch {
		case s.Flags&asm.Exec != 0:
			sec.Flags |= elfx.SHFExecinstr
			layout.NewTextAddr = s.Addr
			layout.NewTextSize = s.Size
		case s.Flags&asm.Write != 0:
			sec.Flags |= elfx.SHFWrite
			layout.InstrAddr = s.Addr
			layout.InstrSize = s.Size
		default:
			layout.NewRodataAddr = s.Addr
			layout.NewRodataSize = s.Size
		}
		out.Sections = append(out.Sections, sec)
	}

	// Entry point moves into the copied code.
	entry, ok := newAddrOf(orig.Entry)
	if !ok {
		return nil, nil, fmt.Errorf("emit: original entry %#x has no copied block", orig.Entry)
	}
	out.Entry = entry
	layout.NewEntry = entry

	// Segments: originals with exec rights dropped, plus the new ones.
	for _, seg := range orig.Segments {
		ns := *seg
		if ns.Type == elfx.PTLoad && ns.Flags&elfx.PFX != 0 {
			ns.Flags &^= elfx.PFX
		}
		out.Segments = append(out.Segments, &ns)
	}
	for _, s := range res.Sections {
		flags := uint32(elfx.PFR)
		if s.Flags&asm.Exec != 0 {
			flags |= elfx.PFX
		}
		if s.Flags&asm.Write != 0 {
			flags |= elfx.PFW
		}
		out.Segments = append(out.Segments, &elfx.Segment{
			Type: elfx.PTLoad, Flags: flags,
			Off: s.Addr, Vaddr: s.Addr,
			Filesz: s.Size, Memsz: s.Size, Align: elfx.PageSize,
		})
	}

	if err := harden.Inject(harden.FPEmitWrite); err != nil {
		return nil, nil, fmt.Errorf("emit: %w", err)
	}
	bin, err := elfx.Write(out)
	if err != nil {
		return nil, nil, fmt.Errorf("emit: %w", err)
	}
	return bin, layout, nil
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }
