// Package sanitizer implements the paper's application study (§4.4): a
// binary-only address sanitizer built on SURI's instrumentation API,
// compared against a BASan-like tool (RetroWrite's sanitizer, including
// its documented stack-corrupting bug) and source-level ASan (the
// compiler's -fsanitize mode).
//
// The binary-only sanitizers instrument every indexed memory access with
// a shadow check and poison the frame boundary (saved RBP + return
// address) for the function's lifetime. They cannot see individual array
// bounds or global variables (§4.4: "our sanitizer does not sanitize
// global variables"), so intra-frame overflows and global overflows are
// inherent false negatives — exactly the paper's Table 5 structure.
//
// Since the instr framework landed the sanitizer is just another
// instr.Pass: the Prologue/Epilogue/MemAccess sites, the label movement
// onto inserted code, and the synthesized-entry bookkeeping all come
// from the framework; this package only supplies the shadow-poisoning
// sequences. It needs no payload region — the shadow map lives at the
// fixed ShadowBase the emulator maps read-write on demand.
package sanitizer

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/instr"
	"repro/internal/serialize"
	"repro/internal/x86"
)

// ShadowBase mirrors the compiler's sanitizer shadow map location.
const ShadowBase = 0x7000_0000

// Tool selects the sanitizer flavour.
type Tool int

// Sanitizer flavours.
const (
	// Ours is the SURI-based binary-only sanitizer.
	Ours Tool = iota
	// BASan is the RetroWrite-like baseline, which additionally poisons
	// the red zone below RSP at function entry and never unpoisons it —
	// its documented stack-corruption bug, the source of Table 5's false
	// positives.
	BASan
)

// Pass is the sanitizer as an instrumentation pass.
type Pass struct {
	Tool Tool
}

// NewPass returns the sanitizer flavour as an instr.Pass.
func NewPass(tool Tool) instr.Pass { return Pass{Tool: tool} }

// Name implements instr.Pass.
func (p Pass) Name() string {
	if p.Tool == BASan {
		return "basan"
	}
	return "sanitizer"
}

// Fingerprint implements instr.Fingerprinter.
func (p Pass) Fingerprint() string { return p.Name() + "/v1" }

// Setup implements instr.Pass. The shadow map is the fixed auto-RW
// region at ShadowBase, so no payload is claimed.
func (Pass) Setup(*instr.Context) error { return nil }

// Visit implements instr.Pass.
func (p Pass) Visit(ctx *instr.Context, s instr.Site) (before, after []serialize.Entry) {
	// Frame-boundary poisoning after each prologue:
	//   endbr64; push rbp; mov rbp, rsp; sub rsp, N
	if s.Points&instr.Prologue != 0 {
		after = poisonFrame(0xFF)
		// Both tools also guard the 16 bytes below the stack pointer
		// against underflows. Ours unpoisons it at the epilogue; BASan
		// never does — its documented stack-corruption bug, which leaves
		// stale poison where later frames live (the source of Table 5's
		// false positives and extra FNs).
		after = append(after, belowRSP(0xFF)...)
		return nil, after
	}

	// Frame-boundary unpoisoning before each epilogue:
	//   mov rsp, rbp; pop rbp; ret
	if s.Points&instr.Epilogue != 0 {
		before = poisonFrame(0x00)
		if p.Tool == Ours {
			before = append(before, belowRSP(0x00)...)
		}
		return before, nil
	}

	// Shadow checks before indexed memory accesses.
	if s.Points&instr.MemAccess != 0 {
		if m, ok := indexedAccess(*s.Entry, p.Tool); ok {
			return shadowCheck(ctx, m), nil
		}
	}
	return nil, nil
}

// Epilogue implements instr.Pass: the appended "=SAN=" reporter.
func (Pass) Epilogue(*instr.Context) []serialize.Entry { return reportRoutine() }

// Instrument returns a SURI instrumenter implementing the sanitizer.
func Instrument(tool Tool) core.Instrumenter {
	return func(entries []serialize.Entry) ([]serialize.Entry, error) {
		res, err := instr.Apply(entries, []instr.Pass{NewPass(tool)}, instr.Options{})
		if err != nil {
			return nil, err
		}
		return res.Entries, nil
	}
}

// Rewrite applies the sanitizer to a binary via the SURI pipeline.
func Rewrite(bin []byte, tool Tool) ([]byte, error) {
	res, err := core.Rewrite(bin, core.Options{Passes: []instr.Pass{NewPass(tool)}})
	if err != nil {
		return nil, fmt.Errorf("sanitizer: %w", err)
	}
	return res.Binary, nil
}

// indexedAccess returns the memory operand to check: a load/store with an
// index register (array-style access). BASan skips byte-wide loads — one
// of its precision gaps.
func indexedAccess(e serialize.Entry, tool Tool) (x86.Mem, bool) {
	switch e.Inst.Op {
	case x86.MOV, x86.MOVZX, x86.MOVSX, x86.MOVSXD:
	default:
		return x86.Mem{}, false
	}
	if tool == BASan && (e.Inst.Op == x86.MOVZX || e.Inst.Op == x86.MOVSX) {
		return x86.Mem{}, false
	}
	m, ok := e.Inst.MemArg()
	if !ok || m.Rip || !m.Index.Valid() || !m.Base.Valid() {
		return x86.Mem{}, false
	}
	if m.Base == x86.RSP || m.Base == x86.RBP {
		return x86.Mem{}, false // direct scalar slots: not array accesses
	}
	return m, true
}

// shadowCheck emits: lea r10,[m]; shr r10,3; cmp byte [r10+shadow],0;
// je ok; call san_report; ok:
func shadowCheck(ctx *instr.Context, m x86.Mem) []serialize.Entry {
	ok := ctx.Label("ok")
	return []serialize.Entry{
		synth(x86.Inst{Op: x86.LEA, W: 8, Dst: x86.R10, Src: m}),
		synth(x86.Inst{Op: x86.SHR, W: 8, Dst: x86.R10, Src: x86.Imm(3)}),
		synth(x86.Inst{Op: x86.CMP, W: 1,
			Dst: x86.Mem{Base: x86.R10, Index: x86.NoReg, Disp: ShadowBase}, Src: x86.Imm(0)}),
		{Inst: x86.Inst{Op: x86.JCC, Cond: x86.CondE, Src: x86.Rel(0)}, Target: ok, Synth: true},
		{Inst: x86.Inst{Op: x86.CALL, Src: x86.Rel(0)}, Target: "san$report", Synth: true},
		{Labels: []string{ok}, Inst: x86.Inst{Op: x86.NOP}, Synth: true},
	}
}

// poisonFrame paints the two shadow granules covering [rbp, rbp+16) —
// the saved frame pointer and the return address — with the given value.
func poisonFrame(v int64) []serialize.Entry {
	return []serialize.Entry{
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.R10, Src: x86.RBP}),
		synth(x86.Inst{Op: x86.SHR, W: 8, Dst: x86.R10, Src: x86.Imm(3)}),
		synth(x86.Inst{Op: x86.MOV, W: 1,
			Dst: x86.Mem{Base: x86.R10, Index: x86.NoReg, Disp: ShadowBase}, Src: x86.Imm(v)}),
		synth(x86.Inst{Op: x86.MOV, W: 1,
			Dst: x86.Mem{Base: x86.R10, Index: x86.NoReg, Disp: ShadowBase + 1}, Src: x86.Imm(v)}),
	}
}

// belowRSP paints the two shadow granules covering [rsp-16, rsp). That
// region only ever holds a callee's return address and saved frame
// pointer, which are never accessed through indexed operands, so the
// poison is safe while the function runs — provided it is cleaned up.
func belowRSP(v int64) []serialize.Entry {
	return []serialize.Entry{
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.R10, Src: x86.RSP}),
		synth(x86.Inst{Op: x86.SUB, W: 8, Dst: x86.R10, Src: x86.Imm(16)}),
		synth(x86.Inst{Op: x86.SHR, W: 8, Dst: x86.R10, Src: x86.Imm(3)}),
		synth(x86.Inst{Op: x86.MOV, W: 1,
			Dst: x86.Mem{Base: x86.R10, Index: x86.NoReg, Disp: ShadowBase}, Src: x86.Imm(v)}),
		synth(x86.Inst{Op: x86.MOV, W: 1,
			Dst: x86.Mem{Base: x86.R10, Index: x86.NoReg, Disp: ShadowBase + 1}, Src: x86.Imm(v)}),
	}
}

// reportRoutine is the appended diagnostic: print "=SAN=\n" to stderr and
// exit(134).
func reportRoutine() []serialize.Entry {
	// The message is materialized on the stack to stay section-free.
	msg := []byte("=SAN=\n")
	var mk []serialize.Entry
	mk = append(mk, serialize.Entry{
		Labels: []string{"san$report"},
		Inst:   x86.Inst{Op: x86.ENDBR64},
		Synth:  true,
	})
	mk = append(mk,
		synth(x86.Inst{Op: x86.SUB, W: 8, Dst: x86.RSP, Src: x86.Imm(16)}),
	)
	for i, c := range msg {
		mk = append(mk, synth(x86.Inst{Op: x86.MOV, W: 1,
			Dst: x86.Mem{Base: x86.RSP, Index: x86.NoReg, Disp: int32(i)}, Src: x86.Imm(int64(c))}))
	}
	mk = append(mk,
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.RSI, Src: x86.RSP}),
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.RDX, Src: x86.Imm(int64(len(msg)))}),
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.RDI, Src: x86.Imm(2)}),
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.RAX, Src: x86.Imm(1)}), // write
		synth(x86.Inst{Op: x86.SYSCALL}),
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.RDI, Src: x86.Imm(134)}),
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.RAX, Src: x86.Imm(60)}), // exit
		synth(x86.Inst{Op: x86.SYSCALL}),
		synth(x86.Inst{Op: x86.HLT}),
	)
	return mk
}

func synth(in x86.Inst) serialize.Entry {
	return serialize.Entry{Inst: in, Synth: true}
}
