package elfx

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/harden"
)

// wellFormed returns the serialized sample binary for mutation.
func wellFormed(t *testing.T) []byte {
	t.Helper()
	b, err := Write(sample())
	if err != nil {
		t.Fatalf("Write(sample): %v", err)
	}
	return b
}

// TestReadCorruptHeaders drives Read over a table of structural
// corruptions. Every case must return an error — and, above all, must
// not panic with a slice out of range.
func TestReadCorruptHeaders(t *testing.T) {
	put16 := func(b []byte, off int, v uint16) { le.PutUint16(b[off:], v) }
	put64 := func(b []byte, off int, v uint64) { le.PutUint64(b[off:], v) }

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated-magic", func(b []byte) []byte { return b[:3] }},
		{"truncated-ehdr", func(b []byte) []byte { return b[:EhdrSize-1] }},
		{"bad-class", func(b []byte) []byte { b[4] = 1; return b }},
		{"bad-endian", func(b []byte) []byte { b[5] = 2; return b }},
		{"bad-machine", func(b []byte) []byte { put16(b, 18, 0x28); return b }},
		{"phoff-wild", func(b []byte) []byte { put64(b, 32, ^uint64(0)-7); return b }},
		{"phoff-past-end", func(b []byte) []byte { put64(b, 32, uint64(len(b))); return b }},
		{"phnum-huge", func(b []byte) []byte { put16(b, 56, 0xFFFF); return b }},
		{"shoff-wild", func(b []byte) []byte { put64(b, 40, ^uint64(0)-7); return b }},
		{"shoff-past-end", func(b []byte) []byte { put64(b, 40, uint64(len(b))-8); return b }},
		{"shnum-huge", func(b []byte) []byte { put16(b, 60, 0xFFFF); return b }},
		{"shstrndx-oob", func(b []byte) []byte { put16(b, 62, 0x7FFF); return b }},
		{"shstrtab-offset-wild", func(b []byte) []byte {
			shoff := le.Uint64(b[40:])
			ndx := uint64(le.Uint16(b[62:]))
			put64(b, int(shoff+ndx*ShdrSize)+24, ^uint64(0)-15)
			return b
		}},
		{"section-size-wraps", func(b []byte) []byte {
			// First non-null section: sh_size = 2^64-1 so off+size wraps.
			shoff := le.Uint64(b[40:])
			put64(b, int(shoff+ShdrSize)+32, ^uint64(0))
			return b
		}},
		{"section-offset-past-end", func(b []byte) []byte {
			shoff := le.Uint64(b[40:])
			put64(b, int(shoff+ShdrSize)+24, uint64(len(b))+1)
			return b
		}},
		{"phdr-filesz-wraps", func(b []byte) []byte {
			// First program header (a PT_LOAD in Write's layout): p_offset
			// near 2^64 so off+filesz wraps past the bounds check.
			phoff := le.Uint64(b[32:])
			put64(b, int(phoff)+8, ^uint64(0)-1)
			return b
		}},
		{"phdr-memsz-below-filesz", func(b []byte) []byte {
			phoff := le.Uint64(b[32:])
			put64(b, int(phoff)+40, 0)
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(wellFormed(t))
			if _, err := Read(b); err == nil {
				t.Fatalf("corrupt input %q accepted", tc.name)
			}
		})
	}
}

// TestReadRandomMutationsNeverPanic splices random values into random
// offsets of a valid binary. Read may reject or accept — it must not
// panic.
func TestReadRandomMutationsNeverPanic(t *testing.T) {
	base := wellFormed(t)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		b := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			off := rng.Intn(len(b))
			switch rng.Intn(3) {
			case 0:
				b[off] ^= byte(1 << rng.Intn(8))
			case 1:
				b[off] = byte(rng.Intn(256))
			default:
				for j := 0; j < 8 && off+j < len(b); j++ {
					b[off+j] = 0xFF
				}
			}
		}
		if rng.Intn(4) == 0 {
			b = b[:rng.Intn(len(b)+1)]
		}
		Read(b) // outcome irrelevant; panics fail the test
	}
}

func TestReadFailpoints(t *testing.T) {
	b := wellFormed(t)
	for _, pt := range []string{harden.FPElfRead, harden.FPElfReadSection} {
		disarm := harden.NewPlan(harden.Fault{Point: pt}).Arm()
		_, err := Read(b)
		disarm()
		if err == nil || !harden.IsInjected(err) {
			t.Errorf("failpoint %s: err = %v, want injected fault", pt, err)
		}
	}
	if _, err := Read(b); err != nil {
		t.Fatalf("Read after disarm: %v", err)
	}
}

func TestParseGNUPropertyCorrupt(t *testing.T) {
	good := BuildGNUProperty(true, true)
	cases := []struct {
		name string
		data []byte
	}{
		{"namesz-max", func() []byte {
			b := append([]byte(nil), good...)
			le.PutUint32(b, 0xFFFFFFFF)
			return b
		}()},
		{"descsz-max", func() []byte {
			b := append([]byte(nil), good...)
			le.PutUint32(b[4:], 0xFFFFFFFF)
			return b
		}()},
		{"prsz-escapes-desc", func() []byte {
			b := append([]byte(nil), good...)
			// pr_datasz lives 4 bytes into the descriptor (after the
			// 12-byte header and 4-byte name).
			le.PutUint32(b[20:], 0xFFFFFFF0)
			return b
		}()},
		{"truncated-desc", good[:len(good)-9]},
		{"just-header", good[:12]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if ibt, shstk := ParseGNUProperty(tc.data); ibt || shstk {
				t.Errorf("corrupt note %q parsed as CET (%v, %v)", tc.name, ibt, shstk)
			}
		})
	}
	// Random truncations and flips must never panic.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		b := append([]byte(nil), good...)
		b[rng.Intn(len(b))] = byte(rng.Intn(256))
		if rng.Intn(3) == 0 {
			b = b[:rng.Intn(len(b)+1)]
		}
		ParseGNUProperty(b)
	}
}

func TestSpanOverflow(t *testing.T) {
	b := make([]byte, 100)
	if _, ok := span(b, ^uint64(0), 16); ok {
		t.Error("span accepted off=2^64-1")
	}
	if _, ok := span(b, 50, ^uint64(0)); ok {
		t.Error("span accepted size=2^64-1")
	}
	if _, ok := span(b, 100, 1); ok {
		t.Error("span accepted off=len, size=1")
	}
	if got, ok := span(b, 100, 0); !ok || len(got) != 0 {
		t.Error("span rejected empty tail slice")
	}
	if got, ok := span(b, 10, 20); !ok || len(got) != 20 {
		t.Error("span rejected valid range")
	}
	if !errors.Is(ErrNotELF, ErrNotELF) {
		t.Error("sanity")
	}
}
