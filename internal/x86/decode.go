package x86

import (
	"errors"
	"fmt"
)

// ErrTruncated is returned when the byte slice ends in the middle of an
// instruction.
var ErrTruncated = errors.New("x86: truncated instruction")

// ErrBadInstruction is returned for byte sequences outside the supported
// subset. Superset disassembly treats such addresses as invalid blocks.
var ErrBadInstruction = errors.New("x86: invalid instruction")

// Decode decodes a single instruction from the start of b, returning the
// instruction and its encoded length. Arbitrary byte sequences are safe to
// pass; undecodable input yields ErrBadInstruction or ErrTruncated.
//
// Byte registers are always decoded in their REX-style meaning (SPL..DIL
// rather than AH..BH); the legacy high-byte registers are outside the
// supported subset.
func Decode(b []byte) (Inst, int, error) {
	d := decoder{b: b}
	in, err := d.decode()
	if err != nil {
		return Inst{}, 0, err
	}
	if d.pos > 15 {
		return Inst{}, 0, ErrBadInstruction
	}
	return in, d.pos, nil
}

type decoder struct {
	b   []byte
	pos int

	rex     byte
	hasRex  bool
	opSize  bool // 0x66 prefix
	notrack bool // 0x3E prefix
	rep     bool // 0xF3 prefix
	fs      bool // 0x64 prefix (FS segment override, TLS access)
}

func (d *decoder) u8() (byte, error) {
	if d.pos >= len(d.b) {
		return 0, ErrTruncated
	}
	v := d.b[d.pos]
	d.pos++
	return v, nil
}

func (d *decoder) i8() (int64, error) {
	v, err := d.u8()
	return int64(int8(v)), err
}

func (d *decoder) i16() (int64, error) {
	if d.pos+2 > len(d.b) {
		return 0, ErrTruncated
	}
	v := int64(int16(uint16(d.b[d.pos]) | uint16(d.b[d.pos+1])<<8))
	d.pos += 2
	return v, nil
}

func (d *decoder) i32() (int64, error) {
	if d.pos+4 > len(d.b) {
		return 0, ErrTruncated
	}
	v := int64(int32(uint32(d.b[d.pos]) | uint32(d.b[d.pos+1])<<8 |
		uint32(d.b[d.pos+2])<<16 | uint32(d.b[d.pos+3])<<24))
	d.pos += 4
	return v, nil
}

func (d *decoder) i64() (int64, error) {
	if d.pos+8 > len(d.b) {
		return 0, ErrTruncated
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(d.b[d.pos+i]) << (8 * i)
	}
	d.pos += 8
	return int64(v), nil
}

// width returns the operand width implied by the active prefixes for a
// non-byte instruction form.
func (d *decoder) width() uint8 {
	if d.rex&rexW != 0 {
		return 8
	}
	if d.opSize {
		return 2
	}
	return 4
}

func (d *decoder) regField(modrm byte) Reg {
	return Reg((modrm >> 3 & 0x7) | (d.rex & rexR << 1))
}

// modRM parses a ModRM byte (and any SIB/displacement) returning the reg
// field and the r/m operand.
func (d *decoder) modRM() (Reg, Arg, error) {
	modrm, err := d.u8()
	if err != nil {
		return 0, nil, err
	}
	reg := d.regField(modrm)
	mod := modrm >> 6
	rm := modrm & 0x7

	if mod == 3 {
		return reg, Reg(rm | d.rex&rexB<<3), nil
	}

	var m Mem
	m.Base, m.Index = NoReg, NoReg
	m.Scale = 1

	if rm == 0x4 { // SIB
		sib, err := d.u8()
		if err != nil {
			return 0, nil, err
		}
		m.Scale = 1 << (sib >> 6)
		idx := Reg(sib>>3&0x7 | d.rex&rexX<<2)
		if idx != RSP { // index=100 with REX.X=0 means "no index"
			m.Index = idx
		}
		base := Reg(sib&0x7 | d.rex&rexB<<3)
		if base.lowBits() == 0x5 && mod == 0 {
			// No base, disp32 follows.
			disp, err := d.i32()
			if err != nil {
				return 0, nil, err
			}
			m.Disp = int32(disp)
			return reg, m, nil
		}
		m.Base = base
	} else if rm == 0x5 && mod == 0 {
		// RIP-relative.
		disp, err := d.i32()
		if err != nil {
			return 0, nil, err
		}
		m.Rip = true
		m.Disp = int32(disp)
		return reg, m, nil
	} else {
		m.Base = Reg(rm | d.rex&rexB<<3)
	}

	switch mod {
	case 1:
		disp, err := d.i8()
		if err != nil {
			return 0, nil, err
		}
		m.Disp = int32(disp)
	case 2:
		disp, err := d.i32()
		if err != nil {
			return 0, nil, err
		}
		m.Disp = int32(disp)
		m.Wide = true
	}
	return reg, m, nil
}

// skipModRM consumes a ModRM byte and its SIB/displacement without
// interpreting the operand (used for multi-byte NOP forms).
func (d *decoder) skipModRM() error {
	_, _, err := d.modRM()
	return err
}

func (d *decoder) immForWidth(w uint8) (int64, error) {
	switch w {
	case 1:
		return d.i8()
	case 2:
		return d.i16()
	default:
		return d.i32()
	}
}

// aluByDigit maps the /digit of the 80/81/83 immediate group to its Op.
// The r/m,r opcode bases hit the same table via base>>3 (0x00>>3 == 0,
// 0x08>>3 == 1, ..., 0x38>>3 == 7), so one flat array serves both.
var aluByDigit = [8]Op{ADD, OR, BAD, BAD, AND, SUB, XOR, CMP}

func (d *decoder) decode() (Inst, error) {
	// Prefix loop.
	for {
		op, err := d.u8()
		if err != nil {
			return Inst{}, err
		}
		switch op {
		case 0x66:
			d.opSize = true
			continue
		case 0x3E:
			d.notrack = true
			continue
		case 0xF3:
			d.rep = true
			continue
		case 0x64:
			d.fs = true
			continue
		}
		if op&0xF0 == 0x40 { // REX
			d.rex = op & 0x0F
			d.hasRex = true
			continue
		}
		in, err := d.decodeOp(op)
		if err == nil && d.fs {
			in, err = applyFS(in)
		}
		return in, err
	}
}

// applyFS attaches a decoded 0x64 prefix to the instruction's memory
// operand. An FS prefix on an instruction without one would be silently
// dropped on re-encode, breaking decode/encode byte-stability, so it is
// rejected instead.
func applyFS(in Inst) (Inst, error) {
	if m, ok := in.Dst.(Mem); ok {
		m.FS = true
		in.Dst = m
		return in, nil
	}
	if m, ok := in.Src.(Mem); ok {
		m.FS = true
		in.Src = m
		return in, nil
	}
	return Inst{}, ErrBadInstruction
}

func (d *decoder) decodeOp(op byte) (Inst, error) {
	switch {
	case op == 0x0F:
		return d.decode0F()

	case isALUBase(op&0xF8) && op&0x07 <= 0x03:
		return d.decodeALURM(op)

	case op >= 0x50 && op <= 0x57:
		return Inst{Op: PUSH, Src: Reg(op - 0x50 | d.rex&rexB<<3)}, nil
	case op >= 0x58 && op <= 0x5F:
		return Inst{Op: POP, Dst: Reg(op - 0x58 | d.rex&rexB<<3)}, nil

	case op == 0x63:
		if d.rex&rexW == 0 {
			return Inst{}, ErrBadInstruction
		}
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOVSXD, W: 8, SrcW: 4, Dst: reg, Src: rm}, nil

	case op == 0x68:
		v, err := d.i32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: PUSH, Src: Imm(v)}, nil
	case op == 0x6A:
		v, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: PUSH, Src: Imm(v)}, nil

	case op == 0x69 || op == 0x6B:
		w := d.width()
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		var v int64
		if op == 0x6B {
			v, err = d.i8()
		} else {
			v, err = d.immForWidth(w)
		}
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: IMUL, W: w, Dst: reg, Src: rm, Imm3: v, HasImm3: true}, nil

	case op >= 0x70 && op <= 0x7F:
		v, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: JCC, Cond: Cond(op - 0x70), Src: Rel(v)}, nil

	case op == 0x80 || op == 0x81 || op == 0x83:
		return d.decodeALUImm(op)

	case op == 0x84 || op == 0x85:
		w := uint8(1)
		if op == 0x85 {
			w = d.width()
		}
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: TEST, W: w, Dst: rm, Src: reg}, nil

	case op >= 0x88 && op <= 0x8B:
		return d.decodeMovRM(op)

	case op == 0x8D:
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		m, ok := rm.(Mem)
		if !ok {
			return Inst{}, ErrBadInstruction
		}
		return Inst{Op: LEA, W: d.width(), Dst: reg, Src: m}, nil

	case op == 0x90:
		if d.hasRex && d.rex&rexB != 0 {
			return Inst{}, ErrBadInstruction // xchg r8, rax: unsupported
		}
		return Inst{Op: NOP}, nil

	case op == 0x99:
		return Inst{Op: CQO, W: d.width()}, nil

	case op >= 0xB0 && op <= 0xB7:
		v, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, W: 1, Dst: Reg(op - 0xB0 | d.rex&rexB<<3), Src: Imm(v)}, nil

	case op >= 0xB8 && op <= 0xBF:
		r := Reg(op - 0xB8 | d.rex&rexB<<3)
		if d.rex&rexW != 0 {
			v, err := d.i64()
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: MOV, W: 8, Dst: r, Src: Imm(v)}, nil
		}
		w := d.width()
		v, err := d.immForWidth(w)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, W: w, Dst: r, Src: Imm(v)}, nil

	case op == 0xC0 || op == 0xC1 || op == 0xD0 || op == 0xD1 || op == 0xD2 || op == 0xD3:
		return d.decodeShift(op)

	case op == 0xC3:
		return Inst{Op: RET}, nil

	case op == 0xC6 || op == 0xC7:
		w := uint8(1)
		if op == 0xC7 {
			w = d.width()
		}
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		if reg.lowBits() != 0 || reg.hiBit() != 0 {
			return Inst{}, ErrBadInstruction
		}
		immW := w
		if w == 8 {
			immW = 4
		}
		v, err := d.immForWidth(immW)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, W: w, Dst: rm, Src: Imm(v)}, nil

	case op == 0xCC:
		return Inst{Op: INT3}, nil

	case op == 0xE8:
		v, err := d.i32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: CALL, Src: Rel(v)}, nil
	case op == 0xE9:
		v, err := d.i32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: JMP, Src: Rel(v), LongBranch: true}, nil
	case op == 0xEB:
		v, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: JMP, Src: Rel(v)}, nil

	case op == 0xF4:
		return Inst{Op: HLT}, nil

	case op == 0xF6 || op == 0xF7:
		return d.decodeGroup3(op)

	case op == 0xFF:
		return d.decodeGroup5()
	}
	return Inst{}, ErrBadInstruction
}

func isALUBase(b byte) bool {
	switch b {
	case 0x00, 0x08, 0x20, 0x28, 0x30, 0x38:
		return true
	}
	return false
}

func (d *decoder) decodeALURM(op byte) (Inst, error) {
	base := op & 0xF8
	form := op & 0x07
	aluOp := aluByDigit[base>>3]
	w := uint8(1)
	if form&1 == 1 {
		w = d.width()
	}
	reg, rm, err := d.modRM()
	if err != nil {
		return Inst{}, err
	}
	if form <= 1 {
		// op r/m, r
		return Inst{Op: aluOp, W: w, Dst: rm, Src: reg}, nil
	}
	// op r, r/m
	return Inst{Op: aluOp, W: w, Dst: reg, Src: rm}, nil
}

func (d *decoder) decodeALUImm(op byte) (Inst, error) {
	w := uint8(1)
	if op != 0x80 {
		w = d.width()
	}
	modrmPos := d.pos
	if modrmPos >= len(d.b) {
		return Inst{}, ErrTruncated
	}
	digit := d.b[modrmPos] >> 3 & 0x7
	aluOp := aluByDigit[digit]
	if aluOp == BAD {
		return Inst{}, ErrBadInstruction
	}
	_, rm, err := d.modRM()
	if err != nil {
		return Inst{}, err
	}
	var v int64
	if op == 0x83 || op == 0x80 {
		v, err = d.i8()
	} else {
		v, err = d.immForWidth(w)
	}
	if err != nil {
		return Inst{}, err
	}
	return Inst{Op: aluOp, W: w, Dst: rm, Src: Imm(v)}, nil
}

func (d *decoder) decodeMovRM(op byte) (Inst, error) {
	w := uint8(1)
	if op&1 == 1 {
		w = d.width()
	}
	reg, rm, err := d.modRM()
	if err != nil {
		return Inst{}, err
	}
	if op <= 0x89 {
		return Inst{Op: MOV, W: w, Dst: rm, Src: reg}, nil
	}
	return Inst{Op: MOV, W: w, Dst: reg, Src: rm}, nil
}

var shiftByDigit = [8]Op{BAD, BAD, BAD, BAD, SHL, SHR, BAD, SAR}

func (d *decoder) decodeShift(op byte) (Inst, error) {
	w := uint8(1)
	if op&1 == 1 {
		w = d.width()
	}
	if d.pos >= len(d.b) {
		return Inst{}, ErrTruncated
	}
	digit := d.b[d.pos] >> 3 & 0x7
	shOp := shiftByDigit[digit]
	if shOp == BAD {
		return Inst{}, ErrBadInstruction
	}
	_, rm, err := d.modRM()
	if err != nil {
		return Inst{}, err
	}
	switch op {
	case 0xC0, 0xC1:
		v, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: shOp, W: w, Dst: rm, Src: Imm(v)}, nil
	case 0xD0, 0xD1:
		return Inst{Op: shOp, W: w, Dst: rm, Src: Imm(1)}, nil
	default: // D2, D3: shift by CL
		return Inst{Op: shOp, W: w, Dst: rm, Src: RCX}, nil
	}
}

func (d *decoder) decodeGroup3(op byte) (Inst, error) {
	w := uint8(1)
	if op == 0xF7 {
		w = d.width()
	}
	if d.pos >= len(d.b) {
		return Inst{}, ErrTruncated
	}
	digit := d.b[d.pos] >> 3 & 0x7
	switch digit {
	case 0: // test r/m, imm
		_, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		immW := w
		if w == 8 {
			immW = 4
		}
		v, err := d.immForWidth(immW)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: TEST, W: w, Dst: rm, Src: Imm(v)}, nil
	case 2, 3, 7:
		_, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		g3op := NOT
		switch digit {
		case 3:
			g3op = NEG
		case 7:
			g3op = IDIV
		}
		return Inst{Op: g3op, W: w, Dst: rm}, nil
	}
	return Inst{}, ErrBadInstruction
}

func (d *decoder) decodeGroup5() (Inst, error) {
	if d.pos >= len(d.b) {
		return Inst{}, ErrTruncated
	}
	digit := d.b[d.pos] >> 3 & 0x7
	_, rm, err := d.modRM()
	if err != nil {
		return Inst{}, err
	}
	switch digit {
	case 2:
		return Inst{Op: CALL, Src: rm, NoTrack: d.notrack}, nil
	case 4:
		return Inst{Op: JMP, Src: rm, NoTrack: d.notrack}, nil
	}
	return Inst{}, ErrBadInstruction
}

func (d *decoder) decode0F() (Inst, error) {
	op, err := d.u8()
	if err != nil {
		return Inst{}, err
	}
	switch {
	case op == 0x05:
		return Inst{Op: SYSCALL}, nil
	case op == 0x0B:
		return Inst{Op: UD2}, nil
	case op == 0x1E:
		// endbr64 is F3 0F 1E FA.
		next, err := d.u8()
		if err != nil {
			return Inst{}, err
		}
		if d.rep && next == 0xFA {
			return Inst{Op: ENDBR64}, nil
		}
		return Inst{}, ErrBadInstruction
	case op == 0x1F:
		// Multi-byte NOP: 0F 1F /0 with arbitrary ModRM.
		if err := d.skipModRM(); err != nil {
			return Inst{}, err
		}
		return Inst{Op: NOP}, nil
	case op >= 0x40 && op <= 0x4F:
		w := d.width()
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: CMOVCC, Cond: Cond(op - 0x40), W: w, Dst: reg, Src: rm}, nil
	case op >= 0x80 && op <= 0x8F:
		v, err := d.i32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: JCC, Cond: Cond(op - 0x80), Src: Rel(v), LongBranch: true}, nil
	case op >= 0x90 && op <= 0x9F:
		_, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: SETCC, Cond: Cond(op - 0x90), Dst: rm, W: 1}, nil
	case op == 0xAF:
		w := d.width()
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: IMUL, W: w, Dst: reg, Src: rm}, nil
	case op == 0xB6 || op == 0xB7 || op == 0xBE || op == 0xBF:
		w := d.width()
		if w == 2 {
			return Inst{}, ErrBadInstruction
		}
		srcW := uint8(1)
		if op == 0xB7 || op == 0xBF {
			srcW = 2
		}
		mvOp := MOVZX
		if op >= 0xBE {
			mvOp = MOVSX
		}
		reg, rm, err := d.modRM()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: mvOp, W: w, SrcW: srcW, Dst: reg, Src: rm}, nil
	}
	return Inst{}, ErrBadInstruction
}

// DecodeAll decodes consecutive instructions until the buffer is exhausted
// or an undecodable sequence is hit, returning the instructions and their
// offsets. It is a convenience for tests and tools.
func DecodeAll(b []byte) (insts []Inst, offsets []int, err error) {
	for pos := 0; pos < len(b); {
		in, n, derr := Decode(b[pos:])
		if derr != nil {
			return insts, offsets, fmt.Errorf("at offset %#x: %w", pos, derr)
		}
		insts = append(insts, in)
		offsets = append(offsets, pos)
		pos += n
	}
	return insts, offsets, nil
}
