package obs

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureCollector builds a fixed trace + metrics on a fake clock, so
// the exported text and JSON are byte-stable.
func fixtureCollector() *Collector {
	c := NewWithClock(&FakeClock{Step: 1000}) // 1µs per reading
	tr := c.Trace()

	root := tr.Start("rewrite")
	cfg := tr.Start("cfg")
	cfg.SetInt("blocks", 12)
	cfg.SetInt("entries", 3)
	harvest := tr.Start("harvest")
	harvest.SetInt("entries", 3)
	harvest.End()
	disasm := tr.Start("disasm")
	disasm.SetInt("round", 0)
	disasm.End()
	cfg.End()
	ser := tr.Start("serialize")
	ser.SetInt("entries", 240)
	ser.End()
	emitSpan := tr.Start("emit")
	emitSpan.SetStr("section", ".suri.text")
	emitSpan.End()
	root.End()

	reg := c.Metrics()
	reg.Counter("suri.rewrites").Inc()
	reg.Counter("suri.blocks").Add(12)
	reg.Gauge("corpus.scale_pct").Set(6)
	h := reg.Histogram("asm.relax_rounds", []int64{1, 2, 4})
	h.Observe(1)
	h.Observe(2)
	h.Observe(7)
	lat := reg.LatencyHistogram("farm.request_ns")
	for _, ns := range []int64{1500, 90_000, 110_000, 130_000, 2_000_000} {
		lat.Observe(ns)
	}
	return c
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestTextExporterGolden(t *testing.T) {
	checkGolden(t, "export.txt", []byte(fixtureCollector().Text()))
}

func TestPrometheusExporterGolden(t *testing.T) {
	checkGolden(t, "prometheus.txt", []byte(fixtureCollector().Metrics().Prometheus()))
}

func TestJSONExporterGolden(t *testing.T) {
	js, err := fixtureCollector().JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "export.json", js)
}

// TestExportDeterminism renders the same fixture twice and requires
// byte equality (map iteration order must not leak into the output).
func TestExportDeterminism(t *testing.T) {
	a, b := fixtureCollector(), fixtureCollector()
	if a.Text() != b.Text() {
		t.Error("text export nondeterministic")
	}
	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Error("JSON export nondeterministic")
	}
}
