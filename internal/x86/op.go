package x86

import "fmt"

// Op is an instruction mnemonic.
type Op uint8

// Supported operations.
const (
	BAD Op = iota // undecodable byte sequence

	ENDBR64
	NOP // includes multi-byte 0F 1F forms

	PUSH // push r64 / imm
	POP  // pop r64

	MOV    // mov r/m,r | r,r/m | r/m,imm | r,imm64
	MOVZX  // movzx r, r/m8|r/m16
	MOVSX  // movsx r, r/m8|r/m16
	MOVSXD // movsxd r64, r/m32
	LEA    // lea r64, m

	ADD
	OR
	AND
	SUB
	XOR
	CMP
	TEST

	IMUL // imul r, r/m  |  imul r, r/m, imm
	IDIV // idiv r/m
	CQO  // sign-extend RAX into RDX:RAX (cdq with W=4)
	NEG  // neg r/m
	NOT  // not r/m
	SHL  // shl r/m, imm8|CL
	SHR
	SAR

	JMP  // jmp rel | jmp r/m64
	JCC  // jcc rel
	CALL // call rel32 | call r/m64
	RET

	SETCC  // setcc r/m8
	CMOVCC // cmovcc r, r/m

	SYSCALL
	UD2
	HLT
	INT3

	numOps
)

var opNames = [numOps]string{
	BAD:     "(bad)",
	ENDBR64: "endbr64",
	NOP:     "nop",
	PUSH:    "push",
	POP:     "pop",
	MOV:     "mov",
	MOVZX:   "movzx",
	MOVSX:   "movsx",
	MOVSXD:  "movsxd",
	LEA:     "lea",
	ADD:     "add",
	OR:      "or",
	AND:     "and",
	SUB:     "sub",
	XOR:     "xor",
	CMP:     "cmp",
	TEST:    "test",
	IMUL:    "imul",
	IDIV:    "idiv",
	CQO:     "cqo",
	NEG:     "neg",
	NOT:     "not",
	SHL:     "shl",
	SHR:     "shr",
	SAR:     "sar",
	JMP:     "jmp",
	JCC:     "j",
	CALL:    "call",
	RET:     "ret",
	SETCC:   "set",
	CMOVCC:  "cmov",
	SYSCALL: "syscall",
	UD2:     "ud2",
	HLT:     "hlt",
	INT3:    "int3",
}

// String returns the base mnemonic; condition suffixes are added by
// Inst.String.
func (op Op) String() string {
	if op < numOps {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// IsBranch reports whether the operation transfers control (including
// call and ret).
func (op Op) IsBranch() bool {
	switch op {
	case JMP, JCC, CALL, RET:
		return true
	}
	return false
}

// IsTerminator reports whether control never falls through to the next
// instruction.
func (op Op) IsTerminator() bool {
	switch op {
	case JMP, RET, UD2, HLT:
		return true
	}
	return false
}
