// Package cfg implements SURI's Superset CFG Builder (§3.2): recursive
// disassembly from harvested entry points, over-approximation of jump
// tables and their targets, and merging of overlapping basic blocks
// (Figure 5). A superset CFG contains every block and edge the original
// program can execute, plus possibly bogus blocks and edges that are
// never executed and therefore cannot affect the rewritten binary.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/elfx"
	"repro/internal/x86"
)

// Block is a basic block of the superset CFG.
type Block struct {
	Addr  uint64
	Insts []x86.Inst
	Sizes []int

	// Succs are direct control-flow successor addresses (branch targets
	// and jump-table targets), excluding fall-through and call targets.
	Succs []uint64

	// Fall is the fall-through successor (the block ends in a
	// conditional branch, a split, or plain straight-line overlap merge).
	Fall    uint64
	HasFall bool

	// Invalid marks a block whose decoding hit undecodable bytes: a
	// bogus over-approximation artifact. Its decoded prefix is retained.
	Invalid bool

	// Table is the jump-table analysis result when the block ends with a
	// resolved indirect jump.
	Table *JumpTable
}

// End returns the address one past the block's last instruction.
func (b *Block) End() uint64 {
	e := b.Addr
	for _, s := range b.Sizes {
		e += uint64(s)
	}
	return e
}

// InstAddrs returns the address of each instruction.
func (b *Block) InstAddrs() []uint64 {
	out := make([]uint64, len(b.Insts))
	a := b.Addr
	for i, s := range b.Sizes {
		out[i] = a
		a += uint64(s)
	}
	return out
}

// JumpTable is the over-approximated dispatch analysis of one indirect
// jump (§3.2.2): the symbolic form "base + sext(table[index]*4)" with all
// reaching base candidates and, per base, the over-approximated entries.
type JumpTable struct {
	JmpAddr  uint64 // address of the indirect jmp
	BlockAdr uint64 // block containing the jmp
	LoadAddr uint64 // address of the movsxd table load
	BaseReg  x86.Reg
	Bases    []uint64 // candidate table base addresses (usually one)

	// Entries holds, per base, the raw 4-byte table entries that were
	// accepted by the over-approximation, and Targets the corresponding
	// code addresses (base + sext(entry)).
	Entries map[uint64][]int32
	Targets map[uint64][]uint64
}

// MultiBase reports whether static analysis could not identify a unique
// base, requiring dynamic base identification (§3.5.2).
func (t *JumpTable) MultiBase() bool { return len(t.Bases) > 1 }

// Graph is a superset CFG for a whole binary.
type Graph struct {
	Blocks  map[uint64]*Block
	Entries []uint64 // sorted function entry points
	Tables  []*JumpTable

	TextStart, TextEnd uint64

	// File is the binary the graph was built from.
	File *elfx.File

	// Degraded notes every optional input source the build dropped
	// because it was malformed (e.g. corrupt .eh_frame). Per the paper
	// such sources are accelerators, never correctness requirements;
	// the notes make the degradation observable to callers and verdicts.
	Degraded []string

	// Plane is the decode plane the build warmed over the text section
	// (nil under Options.Legacy). Callers can pass it to later builds of
	// the same binary via Options.Plane, or Freeze it to share across
	// goroutines.
	Plane *x86.Plane

	// preds is built lazily.
	preds map[uint64][]uint64
}

// SortedBlocks returns all blocks ordered by address.
func (g *Graph) SortedBlocks() []*Block {
	out := make([]*Block, 0, len(g.Blocks))
	for _, b := range g.Blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// FuncBounds returns the boundaries [start, end) of the function
// containing addr: the surrounding entry points (§3.2.2).
func (g *Graph) FuncBounds(addr uint64) (uint64, uint64) {
	i := sort.Search(len(g.Entries), func(i int) bool { return g.Entries[i] > addr })
	start := g.TextStart
	if i > 0 {
		start = g.Entries[i-1]
	}
	end := g.TextEnd
	if i < len(g.Entries) {
		end = g.Entries[i]
	}
	return start, end
}

// IsEntry reports whether addr is a harvested function entry.
func (g *Graph) IsEntry(addr uint64) bool {
	i := sort.Search(len(g.Entries), func(i int) bool { return g.Entries[i] >= addr })
	return i < len(g.Entries) && g.Entries[i] == addr
}

// Preds returns the predecessors (by block address) of the block at addr,
// following both direct and fall-through edges.
func (g *Graph) Preds(addr uint64) []uint64 {
	if g.preds == nil {
		g.preds = make(map[uint64][]uint64)
		for _, b := range g.Blocks {
			for _, s := range b.Succs {
				g.preds[s] = append(g.preds[s], b.Addr)
			}
			if b.HasFall {
				g.preds[b.Fall] = append(g.preds[b.Fall], b.Addr)
			}
		}
	}
	return g.preds[addr]
}

// invalidatePreds must be called whenever edges change.
func (g *Graph) invalidatePreds() { g.preds = nil }

// InstructionSet returns the set of all instruction start addresses in
// the graph.
func (g *Graph) InstructionSet() map[uint64]bool {
	out := make(map[uint64]bool, len(g.Blocks)*4)
	for _, b := range g.Blocks {
		for _, a := range b.InstAddrs() {
			out[a] = true
		}
	}
	return out
}

// NumInstructions counts instructions across all blocks — §4.3.3's
// superset size metric.
func (g *Graph) NumInstructions() int {
	n := 0
	for _, b := range g.Blocks {
		n += len(b.Insts)
	}
	return n
}

// Stats summarizes graph construction.
type Stats struct {
	Blocks       int
	Instructions int
	Entries      int
	Tables       int
	MultiBase    int
	TableEntries int
	Invalid      int

	// PlaneHits/PlaneMisses are the decode plane's cache counters at the
	// time Stats was taken (zero under Options.Legacy).
	PlaneHits   uint64
	PlaneMisses uint64
}

// Stats returns summary statistics for the graph.
func (g *Graph) Stats() Stats {
	st := Stats{
		Blocks:       len(g.Blocks),
		Instructions: g.NumInstructions(),
		Entries:      len(g.Entries),
		Tables:       len(g.Tables),
	}
	if g.Plane != nil {
		st.PlaneHits, st.PlaneMisses = g.Plane.Stats()
	}
	for _, b := range g.Blocks {
		if b.Invalid {
			st.Invalid++
		}
	}
	for _, t := range g.Tables {
		if t.MultiBase() {
			st.MultiBase++
		}
		for _, es := range t.Entries {
			st.TableEntries += len(es)
		}
	}
	return st
}

// textSection locates the executable section of the binary.
func textSection(f *elfx.File) (*elfx.Section, error) {
	var text *elfx.Section
	for _, s := range f.Sections {
		if s.Flags&elfx.SHFExecinstr != 0 && s.Flags&elfx.SHFAlloc != 0 {
			if text != nil {
				return nil, fmt.Errorf("cfg: multiple executable sections")
			}
			text = s
		}
	}
	if text == nil {
		return nil, fmt.Errorf("cfg: no executable section")
	}
	return text, nil
}
