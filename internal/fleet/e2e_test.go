package fleet_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/fleet"
	"repro/internal/harden"
	"repro/internal/obs"
	"repro/internal/prog"
)

// farmWorker is a real surid worker: a full rewrite pool behind the
// real HTTP handler, so fleet e2e tests exercise the actual pipeline.
type farmWorker struct {
	srv  *httptest.Server
	col  *obs.Collector
	pool *farm.Pool
}

func newFarmWorker(t *testing.T) *farmWorker {
	t.Helper()
	col := obs.New().EnableFlight(256)
	cache, err := farm.NewCache(16, "")
	if err != nil {
		t.Fatal(err)
	}
	p := farm.New(farm.Config{Workers: 2, Cache: cache, Obs: col})
	srv := httptest.NewServer(farm.NewHandler(p, farm.ServerOptions{}))
	t.Cleanup(func() {
		srv.Close()
		p.Close()
	})
	return &farmWorker{srv: srv, col: col, pool: p}
}

func e2eBinary(t *testing.T) []byte {
	t.Helper()
	p := prog.Suites(0.03)[0].Programs[0]
	bin, err := cc.Compile(p.Module, cc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// TestE2ECoalescingProof is the tentpole acceptance test: N identical
// concurrent rewrites through the coordinator execute the pipeline
// exactly once across the whole fleet — proven by the workers' own
// farm.jobs_submitted counters — and every caller gets the same
// byte-exact artifact.
func TestE2ECoalescingProof(t *testing.T) {
	w0, w1 := newFarmWorker(t), newFarmWorker(t)
	c := newCoordinator(t, fleet.Options{Workers: []string{w0.srv.URL, w1.srv.URL}})
	srv := serveCoordinator(t, c)
	bin := e2eBinary(t)

	const n = 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	var bins [][]byte
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, out := postFleet(t, srv.URL, "/rewrite", bin)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			mu.Lock()
			bins = append(bins, out.Binary)
			mu.Unlock()
		}()
	}
	wg.Wait()

	executed := w0.col.Metrics().Counter("farm.jobs_submitted").Value() +
		w1.col.Metrics().Counter("farm.jobs_submitted").Value()
	if executed != 1 {
		t.Fatalf("pipeline executions across the fleet = %d, want exactly 1", executed)
	}
	reg := c.Obs().Metrics()
	if got := reg.Counter("fleet.executions").Value(); got != 1 {
		t.Fatalf("fleet.executions = %d, want 1", got)
	}
	co := reg.Counter("fleet.coalesced").Value()
	hits := reg.Counter("fleet.cache_hits").Value()
	if co+hits != n-1 {
		t.Fatalf("coalesced %d + hits %d, want %d non-leaders", co, hits, n-1)
	}
	if len(bins) != n {
		t.Fatalf("results = %d, want %d", len(bins), n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bins[0], bins[i]) {
			t.Fatalf("artifact %d differs from artifact 0", i)
		}
	}
	if len(bins[0]) == 0 {
		t.Fatal("empty artifact")
	}
}

// TestE2EKillWorkerMidBatch is the fault-tolerance acceptance test:
// with a batch in flight, one worker dies; its jobs re-hash to the
// survivor, every job completes, and the stream still terminates with
// a clean summary.
func TestE2EKillWorkerMidBatch(t *testing.T) {
	w0, w1 := newFarmWorker(t), newFarmWorker(t)
	c := newCoordinator(t, fleet.Options{Workers: []string{w0.srv.URL, w1.srv.URL}})
	srv := serveCoordinator(t, c)
	bin := e2eBinary(t)

	// Craft jobs whose keys deterministically land on each worker: the
	// budget is part of the content address, so distinct budget-insts
	// values (all >= the 16Mi default, so none starves the pipeline)
	// give distinct keys with identical behaviour.
	ring := fleet.BuildRing([]string{"w0", "w1"}, 0)
	ownerOf := func(insts int64) string {
		k, ok := farm.Fingerprint(bin, core.Options{Budget: harden.Budget{TotalInsts: insts}})
		if !ok {
			t.Fatal("uncacheable")
		}
		return ring.Owner(fleet.HashKey(k))
	}
	var w0Insts, w1Insts []int64
	for i := int64(0); len(w0Insts) < 2 || len(w1Insts) < 2; i++ {
		insts := int64(harden.DefaultTotalInsts) + i
		if ownerOf(insts) == "w0" {
			w0Insts = append(w0Insts, insts)
		} else {
			w1Insts = append(w1Insts, insts)
		}
	}

	var body bytes.Buffer
	writeJob := func(id string, insts int64) {
		line, _ := json.Marshal(fleet.BatchJob{
			ID: id, Binary: bin, Params: fmt.Sprintf("budget-insts=%d", insts),
		})
		body.Write(append(line, '\n'))
	}
	writeJob("live-a", w1Insts[0])
	writeJob("orphan-a", w0Insts[0])
	writeJob("orphan-b", w0Insts[1])
	writeJob("live-b", w1Insts[1])

	// Park w0's pool so any rewrite forwarded to it stays in flight:
	// the kill below is then guaranteed to catch w0 mid-request, never
	// after a suspiciously fast pipeline already finished.
	park := make(chan struct{})
	defer close(park)
	for i := 0; i < 2; i++ {
		if _, err := w0.pool.Submit(context.Background(), "park", func(ctx context.Context) (any, error) {
			select {
			case <-park:
			case <-ctx.Done():
			}
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	type batchOut struct {
		results map[string]fleet.BatchResult
		summary *fleet.BatchResult
		err     error
	}
	done := make(chan batchOut, 1)
	go func() {
		var out batchOut
		out.results = map[string]fleet.BatchResult{}
		resp, err := http.Post(srv.URL+"/batch", "application/x-ndjson", bytes.NewReader(body.Bytes()))
		if err != nil {
			out.err = err
			done <- out
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 64<<20)
		for sc.Scan() {
			var r fleet.BatchResult
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				out.err = fmt.Errorf("bad result line %q: %w", sc.Bytes(), err)
				done <- out
				return
			}
			if r.Summary {
				s := r
				out.summary = &s
			} else {
				out.results[r.ID] = r
			}
		}
		out.err = sc.Err()
		done <- out
	}()

	// Kill w0 the moment its first forwarded rewrite is in flight: the
	// batch is running, one of its jobs is mid-request on the dying
	// worker (parked behind the blocked pool), and the coordinator must
	// fail everything over.
	waitFor(t, func() bool {
		return w0.col.Metrics().Gauge("farm.http_inflight").Value() >= 1
	})
	w0.srv.CloseClientConnections()
	w0.srv.Close()

	out := <-done
	if out.err != nil {
		t.Fatalf("batch stream did not terminate cleanly: %v", out.err)
	}
	if out.summary == nil {
		t.Fatal("no summary line")
	}
	got := out.results
	if out.summary.Jobs != 4 || out.summary.OK != 4 || out.summary.Failed != 0 {
		t.Fatalf("summary %+v, want jobs 4 ok 4 failed 0 despite worker death", *out.summary)
	}
	for _, id := range []string{"live-a", "live-b", "orphan-a", "orphan-b"} {
		r := got[id]
		if r.Status != http.StatusOK || r.Response == nil {
			t.Fatalf("job %s lost to worker death: %+v", id, r)
		}
		if r.Response.Worker != "" && r.Response.Worker != "w1" {
			t.Fatalf("job %s served by %q, want the survivor w1", id, r.Response.Worker)
		}
	}
	reg := c.Obs().Metrics()
	if reg.Counter("fleet.rehash").Value() < 1 {
		t.Fatal("no rehash counted: the orphaned keys never failed over")
	}
	if reg.Gauge("fleet.workers_alive").Value() != 1 {
		t.Fatal("dead worker still counted alive")
	}
}

// TestE2EKillWorkerPrimary is the replication acceptance test: with
// successor replication on and the coordinator cache off, killing the
// worker that owns (and executed) a key must turn the failover request
// into a replica cache *hit* on the survivor — zero additional pipeline
// executions, proven by the workers' own farm.jobs_submitted counters.
func TestE2EKillWorkerPrimary(t *testing.T) {
	w0, w1 := newFarmWorker(t), newFarmWorker(t)
	c := newCoordinator(t, fleet.Options{
		Workers:      []string{w0.srv.URL, w1.srv.URL},
		CacheEntries: -1, // front-end cache off: a hit can only come from a worker
		Replicate:    1,
	})
	srv := serveCoordinator(t, c)
	bin := e2eBinary(t)

	// Resolve which worker owns the key, the same way the coordinator
	// routes it.
	k, ok := farm.Fingerprint(bin, core.Options{})
	if !ok {
		t.Fatal("uncacheable")
	}
	byName := map[string]*farmWorker{"w0": w0, "w1": w1}
	primaryName := fleet.BuildRing([]string{"w0", "w1"}, 0).Owner(fleet.HashKey(k))
	secondaryName := "w0"
	if primaryName == "w0" {
		secondaryName = "w1"
	}
	primary, secondary := byName[primaryName], byName[secondaryName]

	// Warm: one real execution on the primary.
	resp, out := postFleet(t, srv.URL, "/rewrite", bin)
	if resp.StatusCode != http.StatusOK || out.Worker != primaryName || out.CacheHit {
		t.Fatalf("warm rewrite: status %d worker %q hit %v, want fresh execution on %s",
			resp.StatusCode, out.Worker, out.CacheHit, primaryName)
	}
	// Replication is async: wait until the artifact has actually landed
	// in the successor's cache before pulling the plug.
	waitFor(t, func() bool {
		return c.Obs().Metrics().Counter("fleet.replicas_pushed").Value() >= 1 &&
			secondary.pool.Cache().Stats().Entries >= 1
	})
	submitted := func() int64 {
		return w0.col.Metrics().Counter("farm.jobs_submitted").Value() +
			w1.col.Metrics().Counter("farm.jobs_submitted").Value()
	}
	if got := submitted(); got != 1 {
		t.Fatalf("executions after warm = %d, want 1", got)
	}

	primary.srv.CloseClientConnections()
	primary.srv.Close()

	resp2, out2 := postFleet(t, srv.URL, "/rewrite", bin)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("failover status %d, want 200", resp2.StatusCode)
	}
	if out2.Worker != secondaryName || !out2.CacheHit {
		t.Fatalf("failover: worker %q hit %v, want a cache hit on %s", out2.Worker, out2.CacheHit, secondaryName)
	}
	if !bytes.Equal(out2.Binary, out.Binary) {
		t.Fatal("replica artifact differs from the original")
	}
	if got := submitted(); got != 1 {
		t.Fatalf("executions after failover = %d, want still 1 (the replica absorbed the kill)", got)
	}
}

// TestE2EFlightCorrelation: one request ID, supplied by the client,
// indexes flight events on the coordinator AND on the worker that
// served the forwarded request (satellite: cross-node correlation).
func TestE2EFlightCorrelation(t *testing.T) {
	w := newFarmWorker(t)
	c := newCoordinator(t, fleet.Options{Workers: []string{w.srv.URL}})
	srv := serveCoordinator(t, c)

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/rewrite", bytes.NewReader(e2eBinary(t)))
	req.Header.Set(farm.RequestIDHeader, "xnode-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	for _, node := range []struct{ name, url string }{
		{"coordinator", srv.URL}, {"worker", w.srv.URL},
	} {
		fr, err := http.Get(node.url + "/debug/flight?req=xnode-1")
		if err != nil {
			t.Fatal(err)
		}
		var dump struct {
			Events []obs.Event `json:"events"`
		}
		if err := json.NewDecoder(fr.Body).Decode(&dump); err != nil {
			t.Fatal(err)
		}
		fr.Body.Close()
		if len(dump.Events) == 0 {
			t.Fatalf("%s has no flight events for the shared request ID", node.name)
		}
		for _, e := range dump.Events {
			if e.Req != "xnode-1" {
				t.Fatalf("%s event tagged %q, want xnode-1", node.name, e.Req)
			}
		}
	}
}
