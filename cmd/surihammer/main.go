// Command surihammer is the fleet load generator: it replays the
// evaluation corpus (every compiler x linker x optimization-level
// configuration, 48 per host by default) against a surifleet
// coordinator at configurable request rates and concurrency, and writes
// the measured latency distribution and serving rates to a benchmark
// JSON file.
//
// Each run appends (or replaces) one entry per QPS level under a named
// topology, so the same output file accumulates comparable rows for
// e.g. a 1-worker and a 3-worker fleet:
//
//	surihammer -fleet http://127.0.0.1:8650 -topology 1-worker \
//	           -expect-workers 1 -qps 4,16 -duration 15s
//	surihammer -fleet http://127.0.0.1:8650 -topology 3-worker \
//	           -expect-workers 3 -qps 4,16 -duration 15s
//
// Per entry it reports p50/p99/p999 latency, achieved QPS, the
// cache-hit, coalesce, and degrade rates the fleet served the run with,
// and the resilience deltas (hedge rate and wins, replicas pushed /
// errored / dropped) read from the coordinator's /healthz counters.
// -validate-every marks every Nth request ?validate=1, which is what
// admission control degrades under load — the degrade rate is only
// meaningful when some requests ask for validation. The validated
// requests' latency distribution is additionally reported on its own
// (validate_p50_ms / validate_p99_ms), so the report shows what
// differential execution costs at the fleet level — the number the
// tiered emulator moves. -chaos labels the
// run with the fault spec armed on the coordinator and turns the run
// into an assertion: any lost request fails the process.
//
// Usage:
//
//	surihammer [-fleet URL] [-topology NAME] [-expect-workers N]
//	           [-qps N,N,...] [-concurrency N] [-duration D]
//	           [-scale F] [-host all] [-validate-every N]
//	           [-chaos SPEC] [-out BENCH_scale.json] [-fresh]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/eval"
	"repro/internal/farm"
	"repro/internal/fleet"
)

// Entry is one measured load level: a (topology, qps) cell of the
// scale benchmark.
type Entry struct {
	Topology    string  `json:"topology"`
	Workers     int     `json:"workers"`
	QPSTarget   float64 `json:"qps_target"`
	QPSAchieved float64 `json:"qps_achieved"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	Shed        int     `json:"shed"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P999Ms      float64 `json:"p999_ms"`

	// Validate-path latency, measured over only the ?validate=1
	// requests (every -validate-every'th): the differential-execution
	// cost the tiered emulator is meant to shrink. Zero when the level
	// sent no validated requests.
	ValidateRequests int     `json:"validate_requests"`
	ValidateP50Ms    float64 `json:"validate_p50_ms"`
	ValidateP99Ms    float64 `json:"validate_p99_ms"`

	CacheHitRate float64 `json:"cache_hit_rate"`
	CoalesceRate float64 `json:"coalesce_rate"`
	DegradeRate  float64 `json:"degrade_rate"`
	CorpusSize   int     `json:"corpus_size"`

	// Resilience counters, measured as coordinator-side deltas across
	// the level (from /healthz before and after).
	Chaos          string  `json:"chaos,omitempty"` // armed -chaos spec, when the run was a chaos soak
	Hedges         int64   `json:"hedges"`
	HedgeWins      int64   `json:"hedge_wins"`
	HedgeRate      float64 `json:"hedge_rate"` // hedges / requests
	ReplicasPushed int64   `json:"replicas_pushed"`
	ReplicaErrors  int64   `json:"replica_errors"`
	ReplicaDropped int64   `json:"replica_dropped"`
}

// Report is the BENCH_scale.json document: entries accumulate across
// runs so topologies can be compared side by side.
type Report struct {
	Generated string  `json:"generated"`
	Entries   []Entry `json:"entries"`
}

type reqResult struct {
	dur      time.Duration
	err      bool
	shed     bool
	hit      bool
	coalesce bool
	degraded bool
	validate bool
}

func main() {
	fleetURL := flag.String("fleet", "http://127.0.0.1:8650", "coordinator base URL")
	topology := flag.String("topology", "1-worker", "label for this fleet shape in the report")
	expectWorkers := flag.Int("expect-workers", 0, "wait until this many workers are alive before loading (0 = don't wait)")
	qpsList := flag.String("qps", "4,16", "comma-separated request rates to run, one entry each")
	concurrency := flag.Int("concurrency", 16, "max in-flight requests on the generator side")
	duration := flag.Duration("duration", 15*time.Second, "wall-clock length of each QPS level")
	scale := flag.Float64("scale", 0.03, "corpus scale factor (program sizes)")
	host := flag.String("host", "all", "corpus host profile: all | ubuntu18.04 | ubuntu20.04")
	validateEvery := flag.Int("validate-every", 5, "mark every Nth request ?validate=1 (0 = never)")
	out := flag.String("out", "BENCH_scale.json", "report file to create or merge into")
	fresh := flag.Bool("fresh", false, "discard existing report entries instead of merging")
	chaos := flag.String("chaos", "", "label the run with the coordinator's armed -chaos spec and fail on any lost request")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "surihammer:", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "surihammer: building corpus (scale %g, host %s)...\n", *scale, *host)
	corpus, err := eval.BuildCorpus(*scale, eval.ConfigsFor(*host))
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "surihammer: %d corpus cases\n", len(corpus))

	if *expectWorkers > 0 {
		if err := waitForWorkers(*fleetURL, *expectWorkers, time.Minute); err != nil {
			fail(err)
		}
	}

	var entries []Entry
	for _, qs := range strings.Split(*qpsList, ",") {
		qps, err := strconv.ParseFloat(strings.TrimSpace(qs), 64)
		if err != nil || qps <= 0 {
			fail(fmt.Errorf("bad qps %q", qs))
		}
		alive := aliveWorkers(*fleetURL)
		fmt.Fprintf(os.Stderr, "surihammer: level %s @ %g qps for %s (%d workers alive)\n",
			*topology, qps, *duration, alive)
		before := fleetSnapshot(*fleetURL)
		e := runLevel(*fleetURL, corpus, qps, *concurrency, *duration, *validateEvery)
		after := fleetSnapshot(*fleetURL)
		e.Topology = *topology
		e.Workers = alive
		e.CorpusSize = len(corpus)
		e.Chaos = *chaos
		e.Hedges = after.Hedges - before.Hedges
		e.HedgeWins = after.HedgeWins - before.HedgeWins
		e.ReplicasPushed = after.ReplicasPush - before.ReplicasPush
		e.ReplicaErrors = after.ReplicaErrors - before.ReplicaErrors
		e.ReplicaDropped = after.ReplicaDrops - before.ReplicaDrops
		if e.Requests > 0 {
			e.HedgeRate = float64(e.Hedges) / float64(e.Requests)
		}
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr,
			"surihammer:   %d reqs (%d errors, %d shed)  p50 %.1fms  p99 %.1fms  p999 %.1fms  hit %.0f%%  coalesce %.0f%%  degrade %.0f%%  hedge %.0f%% (%d won)  repl %d pushed/%d err/%d dropped\n",
			e.Requests, e.Errors, e.Shed, e.P50Ms, e.P99Ms, e.P999Ms,
			e.CacheHitRate*100, e.CoalesceRate*100, e.DegradeRate*100,
			e.HedgeRate*100, e.HedgeWins, e.ReplicasPushed, e.ReplicaErrors, e.ReplicaDropped)
		if e.ValidateRequests > 0 {
			fmt.Fprintf(os.Stderr,
				"surihammer:   validate path: %d reqs  p50 %.1fms  p99 %.1fms\n",
				e.ValidateRequests, e.ValidateP50Ms, e.ValidateP99Ms)
		}
	}

	if err := mergeReport(*out, entries, *fresh); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "surihammer: wrote %s\n", *out)
	if *chaos != "" {
		// A chaos soak is an assertion, not just a measurement: with up
		// to fleet-minus-one victims a clean failover path always exists,
		// so any lost request is a coordinator bug.
		var lost int
		for _, e := range entries {
			lost += e.Errors
		}
		if lost > 0 {
			fail(fmt.Errorf("chaos soak %q lost %d requests", *chaos, lost))
		}
		fmt.Fprintf(os.Stderr, "surihammer: chaos soak %q clean: zero lost requests\n", *chaos)
	}
}

// fleetSnapshot reads the coordinator's health counters; a zero value
// on error keeps the deltas harmless.
func fleetSnapshot(base string) fleet.FleetHealth {
	var h fleet.FleetHealth
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return h
	}
	defer resp.Body.Close()
	json.NewDecoder(resp.Body).Decode(&h)
	return h
}

// runLevel drives one QPS level open-loop: a ticker paces dispatch, a
// semaphore bounds generator-side concurrency (a full semaphore skips
// the tick and counts it as shed-by-generator backpressure).
func runLevel(base string, corpus []eval.Case, qps float64, concurrency int, d time.Duration, validateEvery int) Entry {
	interval := time.Duration(float64(time.Second) / qps)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	stop := time.After(d)
	sem := make(chan struct{}, concurrency)
	results := make(chan reqResult, 1024)
	var collected []reqResult
	collectDone := make(chan struct{})
	go func() {
		defer close(collectDone)
		for r := range results {
			collected = append(collected, r)
		}
	}()

	client := &http.Client{}
	start := time.Now()
loop:
	for i := 0; ; i++ {
		select {
		case <-stop:
			break loop
		case <-tick.C:
		}
		cs := corpus[i%len(corpus)]
		validate := validateEvery > 0 && i%validateEvery == 0
		select {
		case sem <- struct{}{}:
		default:
			// Generator at max concurrency: the fleet is slower than the
			// offered rate. Record the tick as backpressure, not latency.
			results <- reqResult{err: false, shed: true}
			continue
		}
		go func() {
			defer func() { <-sem }()
			results <- oneRequest(client, base, cs.Bin, validate)
		}()
	}
	// Drain stragglers: every launched request reports exactly once.
	for i := 0; i < cap(sem); i++ {
		sem <- struct{}{}
	}
	elapsed := time.Since(start)
	close(results)
	<-collectDone

	var lat, vlat []time.Duration
	e := Entry{
		QPSTarget: qps, Concurrency: concurrency,
		DurationSec: elapsed.Seconds(),
	}
	for _, r := range collected {
		if r.shed {
			e.Shed++
			continue
		}
		e.Requests++
		if r.err {
			e.Errors++
			continue
		}
		lat = append(lat, r.dur)
		if r.validate {
			vlat = append(vlat, r.dur)
		}
		if r.hit {
			e.CacheHitRate++
		}
		if r.coalesce {
			e.CoalesceRate++
		}
		if r.degraded {
			e.DegradeRate++
		}
	}
	if n := len(lat); n > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		q := func(p float64) float64 {
			i := int(p * float64(n))
			if i >= n {
				i = n - 1
			}
			return float64(lat[i]) / float64(time.Millisecond)
		}
		e.P50Ms, e.P99Ms, e.P999Ms = q(0.50), q(0.99), q(0.999)
		e.CacheHitRate /= float64(n)
		e.CoalesceRate /= float64(n)
		e.DegradeRate /= float64(n)
	}
	// The validate-path distribution is reported separately: validated
	// requests run the pipeline plus two differential executions, so
	// folding them into the overall quantiles hides exactly the cost the
	// tiered emulator targets.
	if n := len(vlat); n > 0 {
		sort.Slice(vlat, func(i, j int) bool { return vlat[i] < vlat[j] })
		q := func(p float64) float64 {
			i := int(p * float64(n))
			if i >= n {
				i = n - 1
			}
			return float64(vlat[i]) / float64(time.Millisecond)
		}
		e.ValidateRequests = n
		e.ValidateP50Ms, e.ValidateP99Ms = q(0.50), q(0.99)
	}
	if e.DurationSec > 0 {
		e.QPSAchieved = float64(e.Requests-e.Errors) / e.DurationSec
	}
	return e
}

func oneRequest(client *http.Client, base string, bin []byte, validate bool) reqResult {
	url := base + "/rewrite"
	if validate {
		url += "?validate=1"
	}
	t0 := time.Now()
	resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(bin))
	if err != nil {
		return reqResult{err: true}
	}
	defer resp.Body.Close()
	var r reqResult
	r.dur = time.Since(t0)
	r.validate = validate
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return reqResult{err: true, dur: r.dur}
	}
	var body farm.RewriteResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return reqResult{err: true, dur: r.dur}
	}
	r.hit = body.CacheHit
	r.coalesce = body.Coalesced
	r.degraded = body.Verdict == "degraded" && body.Reason != ""
	return r
}

// waitForWorkers polls the coordinator's /healthz until the fleet has
// the expected number of alive workers (the benchmark must not measure
// a half-started topology).
func waitForWorkers(base string, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if n := aliveWorkers(base); n >= want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet at %s did not reach %d alive workers in %s", base, want, timeout)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func aliveWorkers(base string) int {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var h fleet.FleetHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0
	}
	return h.WorkersAlive
}

// mergeReport folds new entries into the report file: an entry replaces
// any previous entry with the same (topology, qps_target), so re-runs
// refresh cells in place and different topologies accumulate.
func mergeReport(path string, entries []Entry, fresh bool) error {
	var rep Report
	if !fresh {
		if data, err := os.ReadFile(path); err == nil {
			json.Unmarshal(data, &rep)
		}
	}
	for _, e := range entries {
		replaced := false
		for i, old := range rep.Entries {
			if old.Topology == e.Topology && old.QPSTarget == e.QPSTarget {
				rep.Entries[i] = e
				replaced = true
				break
			}
		}
		if !replaced {
			rep.Entries = append(rep.Entries, e)
		}
	}
	sort.SliceStable(rep.Entries, func(i, j int) bool {
		if rep.Entries[i].Topology != rep.Entries[j].Topology {
			return rep.Entries[i].Topology < rep.Entries[j].Topology
		}
		return rep.Entries[i].QPSTarget < rep.Entries[j].QPSTarget
	})
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
