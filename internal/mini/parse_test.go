package mini

import (
	"bytes"
	"strings"
	"testing"
)

const sampleSrc = `
global g[8]i64 = { 1, 2, 3 };
global ro_tab[4]i32 ro = { -5, 6, -7, 8 };
global z[16]i8;
ptr mid = &g + 16;
functable ops = { inc, dbl };

func inc(p0) {
  return p0 + 1;
}

func dbl(p0) {
  return p0 * 2;
}

// comment
func main() {
  var i;
  var acc;
  array buf[8]i64;
  i = 0;
  acc = input();
  while (i < 8) {
    buf[i & 7] = g[i % 8] + acc;
    z[i] = i;
    switch complete (i & 3) {
    case 0: { print 100; }
    case 1: { print 101; }
    case 2: { print 102; }
    case 3: { print 103; }
    }
    acc = acc + ops[i & 1](i);
    i = i + 1;
  }
  print *mid[0];
  *mid[1] = 99;
  print g[3];
  acc = &inc;
  print (acc)(41);
  if (acc == 0) { print -1; } else { print ro_tab[1]; }
  putc 10;
  return acc & 63;
}
`

func TestParseSample(t *testing.T) {
	m, err := Parse("sample", sampleSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(m.Globals) != 5 || len(m.Funcs) != 3 {
		t.Fatalf("got %d globals, %d funcs", len(m.Globals), len(m.Funcs))
	}
	if m.Global("ro_tab") == nil || !m.Global("ro_tab").ReadOnly {
		t.Error("ro_tab not read-only")
	}
	if m.Global("mid").PtrInit.ByteOff != 16 {
		t.Error("ptr offset wrong")
	}
	if len(m.Global("ops").FuncTable) != 2 {
		t.Error("functable wrong")
	}
	res, err := Run(m, []int64{5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Output) == 0 {
		t.Error("no output")
	}
}

// TestFormatParseRoundTrip: a parsed module, formatted and re-parsed,
// must behave identically.
func TestFormatParseRoundTrip(t *testing.T) {
	m1, err := Parse("rt", sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(m1)
	m2, err := Parse("rt2", text)
	if err != nil {
		t.Fatalf("re-parse of formatted source failed: %v\nsource:\n%s", err, text)
	}
	for _, input := range [][]int64{{0}, {7}, {-3}} {
		r1, err := Run(m1, input)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(m2, input)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r1.Output, r2.Output) || r1.Exit != r2.Exit {
			t.Fatalf("round-trip behaviour differs on %v:\n%q vs %q", input, r1.Output, r2.Output)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"func f(", "expected"},
		{"global g[4]i17;", "unknown element type"},
		{"func f(x) { }", "parameters must be named"},
		{"func f() { return 1 }", "expected \";\""},
		{"@", "unexpected character"},
		{"func f() { switch (1) { banana } }", "expected case or default"},
		{"global g[4]i64 = { 1 2 };", "expected , or }"},
		{"/* unterminated", "unterminated comment"},
	}
	for _, c := range cases {
		_, err := Parse("bad", c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	m, err := Parse("prec", `
func main() {
  print 2 + 3 * 4;
  print 1 << 2 + 1; // shift binds looser than +, like C
  print 10 - 2 - 3;
  print 7 & 3 | 8;
  print 1 + 2 == 3;
  print -5 % 3;
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := "14\n8\n5\n11\n1\n-2\n"
	if string(res.Output) != want {
		t.Errorf("output %q, want %q", res.Output, want)
	}
}

func TestParseHexAndComments(t *testing.T) {
	m, err := Parse("hex", `
func main() {
  // line comment
  print 0x10; /* block */ print 0x0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "16\n0\n" {
		t.Errorf("output %q", res.Output)
	}
}
