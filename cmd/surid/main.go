// Command surid serves the SURI pipeline as an HTTP batch service: a
// concurrent rewrite farm with a content-addressed artifact cache
// behind an observable endpoint set:
//
//	POST /rewrite       binary in -> {"cache_hit":…,"stats":{…},"binary":"<base64>"}
//	                    query: ignore-ehframe=1, allow-noncet=1, validate=1,
//	                           trace=1 (attach the request's span tree),
//	                           timeout=<duration>, budget-insts=<n>, budget-steps=<n>,
//	                           instrument=<pass,pass,...> (standard instrumentation
//	                           passes, e.g. coverage,shadowstack; unknown names
//	                           answer 422 with the instrument stage; instrumented
//	                           artifacts are cached under their own content key)
//	GET  /healthz       structured liveness/readiness JSON (503 while draining)
//	GET  /metrics       Prometheus text exposition (?format=text for the
//	                    human-readable obs dump)
//	GET  /debug/flight  the flight recorder's retained events (?n=, ?req=)
//	GET  /debug/pprof/  stdlib profiling endpoints, only with -pprof
//
// Every request gets an ID (client-supplied X-Suri-Request-Id or
// server-minted), echoed on the response and tagging the request's
// flight-recorder events; failed requests dump their captured events to
// the server log.
//
// Usage:
//
//	surid [-addr :8649] [-j N] [-cache-dir DIR] [-cache-entries N] [-max-inflight N]
//	      [-max-body BYTES] [-timeout D] [-budget N] [-budget-steps N]
//	      [-flight N] [-pprof] [-register URL] [-advertise URL]
//
// -register joins a surifleet coordinator as a worker: the server posts
// its own URL (-advertise, default derived from -addr) to the
// coordinator's /fleet/register and keeps retrying in the background,
// so worker and coordinator can start in either order.
//
// -j sets the farm's worker count (default GOMAXPROCS); -cache-dir
// enables write-through disk persistence of rewrite artifacts, so a
// restarted server still answers repeat requests from cache;
// -max-inflight caps concurrent /rewrite requests (excess get 503 with
// Retry-After); -max-body bounds the request body (413 past it);
// -timeout bounds each request's wall clock and is wired into the
// pipeline as a cancellation budget (per-request ?timeout= can only
// tighten it); -budget / -budget-steps set the default decoded-
// instruction and emulator-step budgets (0 = pipeline defaults);
// -flight sizes the always-on flight recorder ring (0 disables it);
// -pprof mounts /debug/pprof/. Budget or timeout exhaustion answers 422
// with the failing stage and the "fallback" verdict. SIGINT/SIGTERM
// trigger a graceful shutdown: /healthz flips to draining so load
// balancers stop routing here, in-flight requests finish, then the
// farm drains and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/farm"
	"repro/internal/fleet"
	"repro/internal/harden"
	"repro/internal/obs"
)

// advertiseURL derives the worker URL a coordinator should dial from
// the listen address: a bare ":port" advertises localhost.
func advertiseURL(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

func main() {
	addr := flag.String("addr", ":8649", "listen address")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "farm worker goroutines")
	cacheDir := flag.String("cache-dir", "", "persist rewrite artifacts under this directory (empty = memory only)")
	cacheEntries := flag.Int("cache-entries", 256, "in-memory artifact cache size (LRU)")
	maxInflight := flag.Int("max-inflight", 0, "concurrent /rewrite requests before 503 (0 = 4x workers)")
	timeout := flag.Duration("job-timeout", 0, "per-rewrite deadline (0 = none)")
	maxBody := flag.Int64("max-body", 0, "max request body bytes before 413 (0 = 64 MiB)")
	reqTimeout := flag.Duration("timeout", 0, "per-request deadline, wired into the pipeline budget (0 = none)")
	budgetInsts := flag.Int64("budget", 0, "default decoded-instruction budget per rewrite (0 = pipeline default)")
	budgetSteps := flag.Uint64("budget-steps", 0, "default emulator-step budget per validation run (0 = pipeline default)")
	flightEvents := flag.Int("flight", 4096, "flight recorder capacity in events (0 = disabled)")
	enablePprof := flag.Bool("pprof", false, "serve stdlib profiling under /debug/pprof/")
	register := flag.String("register", "", "coordinator base URL to join as a fleet worker (e.g. http://host:8650)")
	advertise := flag.String("advertise", "", "URL the coordinator should reach this worker at (default derived from -addr)")
	flag.Parse()

	col := obs.New()
	if *flightEvents > 0 {
		col.EnableFlight(*flightEvents)
	}
	cache, err := farm.NewCache(*cacheEntries, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "surid:", err)
		os.Exit(1)
	}
	pool := farm.New(farm.Config{
		Workers:    *jobs,
		JobTimeout: *timeout,
		Cache:      cache,
		Obs:        col,
	})
	server := farm.NewServer(pool, farm.ServerOptions{
		MaxInflight:    *maxInflight,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *reqTimeout,
		Budget:         harden.Budget{TotalInsts: *budgetInsts, EmuSteps: *budgetSteps},
		EnablePprof:    *enablePprof,
		ErrorLog:       log.Default(),
	})
	srv := &http.Server{Addr: *addr, Handler: server}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Print("surid: draining")
		// Flip health to 503 first so load balancers stop sending new
		// traffic, then let in-flight requests finish.
		server.SetDraining(true)
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("surid: shutdown: %v", err)
		}
	}()

	if *register != "" {
		// Self-registration: announce this worker to the fleet
		// coordinator once it is reachable. Retried in the background
		// with capped exponential backoff + jitter (each attempt's cause
		// logged) so worker and coordinator can start in either order;
		// the coordinator's health sweep takes over from there.
		workerURL := *advertise
		if workerURL == "" {
			workerURL = advertiseURL(*addr)
		}
		go func() {
			if err := fleet.Register(*register, workerURL, 12, 250*time.Millisecond, log.Printf); err != nil {
				log.Printf("surid: fleet registration with %s failed: %v", *register, err)
				return
			}
			log.Printf("surid: registered with fleet %s as %s", *register, workerURL)
		}()
	}

	log.Printf("surid: listening on %s (%d workers, cache %d entries, dir %q, flight %d)",
		*addr, pool.Workers(), *cacheEntries, *cacheDir, *flightEvents)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "surid:", err)
		os.Exit(1)
	}
	<-done       // in-flight requests finished
	pool.Close() // farm drained; no goroutines leak past this line
	log.Print("surid: bye")
}
