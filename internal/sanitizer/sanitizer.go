// Package sanitizer implements the paper's application study (§4.4): a
// binary-only address sanitizer built on SURI's instrumentation API,
// compared against a BASan-like tool (RetroWrite's sanitizer, including
// its documented stack-corrupting bug) and source-level ASan (the
// compiler's -fsanitize mode).
//
// The binary-only sanitizers instrument every indexed memory access with
// a shadow check and poison the frame boundary (saved RBP + return
// address) for the function's lifetime. They cannot see individual array
// bounds or global variables (§4.4: "our sanitizer does not sanitize
// global variables"), so intra-frame overflows and global overflows are
// inherent false negatives — exactly the paper's Table 5 structure.
package sanitizer

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/serialize"
	"repro/internal/x86"
)

// ShadowBase mirrors the compiler's sanitizer shadow map location.
const ShadowBase = 0x7000_0000

// Tool selects the sanitizer flavour.
type Tool int

// Sanitizer flavours.
const (
	// Ours is the SURI-based binary-only sanitizer.
	Ours Tool = iota
	// BASan is the RetroWrite-like baseline, which additionally poisons
	// the red zone below RSP at function entry and never unpoisons it —
	// its documented stack-corruption bug, the source of Table 5's false
	// positives.
	BASan
)

// Instrument returns a SURI instrumenter implementing the sanitizer.
func Instrument(tool Tool) core.Instrumenter {
	return func(entries []serialize.Entry) ([]serialize.Entry, error) {
		return instrument(entries, tool)
	}
}

// Rewrite applies the sanitizer to a binary via the SURI pipeline.
func Rewrite(bin []byte, tool Tool) ([]byte, error) {
	res, err := core.Rewrite(bin, core.Options{Instrument: Instrument(tool)})
	if err != nil {
		return nil, fmt.Errorf("sanitizer: %w", err)
	}
	return res.Binary, nil
}

var labelSeq int

func sanLabel(p string) string {
	labelSeq++
	return fmt.Sprintf(".Lsan_%s%d", p, labelSeq)
}

func instrument(entries []serialize.Entry, tool Tool) ([]serialize.Entry, error) {
	var out []serialize.Entry
	for i := 0; i < len(entries); i++ {
		e := entries[i]

		// Frame-boundary poisoning after each prologue:
		//   endbr64; push rbp; mov rbp, rsp; sub rsp, N
		if isProloguePoint(entries, i) {
			out = append(out, e)
			out = append(out, poisonFrame(0xFF)...)
			// Both tools also guard the 16 bytes below the stack pointer
			// against underflows. Ours unpoisons it at the epilogue;
			// BASan never does — its documented stack-corruption bug,
			// which leaves stale poison where later frames live (the
			// source of Table 5's false positives and extra FNs).
			out = append(out, belowRSP(0xFF)...)
			continue
		}

		// Frame-boundary unpoisoning before each epilogue:
		//   mov rsp, rbp; pop rbp; ret
		if isEpiloguePoint(entries, i) {
			fix := poisonFrame(0x00)
			if tool == Ours {
				fix = append(fix, belowRSP(0x00)...)
			}
			if len(e.Labels) > 0 {
				fix[0].Labels = append(e.Labels, fix[0].Labels...)
				e.Labels = nil
			}
			out = append(out, fix...)
			out = append(out, e)
			continue
		}

		// Shadow checks before indexed memory accesses.
		if m, ok := indexedAccess(e, tool); ok {
			chk := shadowCheck(m)
			if len(e.Labels) > 0 {
				chk[0].Labels = append(e.Labels, chk[0].Labels...)
				e.Labels = nil
			}
			out = append(out, chk...)
		}
		out = append(out, e)
	}
	return append(out, reportRoutine()...), nil
}

// isProloguePoint reports whether entries[i] is the "sub rsp, N" (or the
// "mov rbp, rsp" of a frameless function) completing a prologue.
func isProloguePoint(entries []serialize.Entry, i int) bool {
	e := entries[i]
	if e.Synth || e.Inst.Op != x86.SUB {
		return false
	}
	d, ok := e.Inst.Dst.(x86.Reg)
	if !ok || d != x86.RSP {
		return false
	}
	if _, isImm := e.Inst.Src.(x86.Imm); !isImm {
		return false
	}
	// Preceding instruction should be "mov rbp, rsp".
	for j := i - 1; j >= 0 && j >= i-2; j-- {
		p := entries[j]
		if p.Synth {
			continue
		}
		if p.Inst.Op == x86.MOV {
			if pd, ok := p.Inst.Dst.(x86.Reg); ok && pd == x86.RBP {
				if ps, ok := p.Inst.Src.(x86.Reg); ok && ps == x86.RSP {
					return true
				}
			}
		}
		return false
	}
	return false
}

// isEpiloguePoint reports whether entries[i] starts "mov rsp, rbp; pop
// rbp; ret".
func isEpiloguePoint(entries []serialize.Entry, i int) bool {
	e := entries[i]
	if e.Synth || e.Inst.Op != x86.MOV {
		return false
	}
	d, dok := e.Inst.Dst.(x86.Reg)
	s, sok := e.Inst.Src.(x86.Reg)
	if !dok || !sok || d != x86.RSP || s != x86.RBP {
		return false
	}
	if i+2 >= len(entries) {
		return false
	}
	return entries[i+1].Inst.Op == x86.POP && entries[i+2].Inst.Op == x86.RET
}

// indexedAccess returns the memory operand to check: a load/store with an
// index register (array-style access). BASan skips byte-wide loads — one
// of its precision gaps.
func indexedAccess(e serialize.Entry, tool Tool) (x86.Mem, bool) {
	if e.Synth {
		return x86.Mem{}, false
	}
	switch e.Inst.Op {
	case x86.MOV, x86.MOVZX, x86.MOVSX, x86.MOVSXD:
	default:
		return x86.Mem{}, false
	}
	if tool == BASan && (e.Inst.Op == x86.MOVZX || e.Inst.Op == x86.MOVSX) {
		return x86.Mem{}, false
	}
	m, ok := e.Inst.MemArg()
	if !ok || m.Rip || !m.Index.Valid() || !m.Base.Valid() {
		return x86.Mem{}, false
	}
	if m.Base == x86.RSP || m.Base == x86.RBP {
		return x86.Mem{}, false // direct scalar slots: not array accesses
	}
	return m, true
}

// shadowCheck emits: lea r10,[m]; shr r10,3; cmp byte [r10+shadow],0;
// je ok; call san_report; ok:
func shadowCheck(m x86.Mem) []serialize.Entry {
	ok := sanLabel("ok")
	lea := m
	return []serialize.Entry{
		synth(x86.Inst{Op: x86.LEA, W: 8, Dst: x86.R10, Src: lea}),
		synth(x86.Inst{Op: x86.SHR, W: 8, Dst: x86.R10, Src: x86.Imm(3)}),
		synth(x86.Inst{Op: x86.CMP, W: 1,
			Dst: x86.Mem{Base: x86.R10, Index: x86.NoReg, Disp: ShadowBase}, Src: x86.Imm(0)}),
		{Inst: x86.Inst{Op: x86.JCC, Cond: x86.CondE, Src: x86.Rel(0)}, Target: ok, Synth: true},
		{Inst: x86.Inst{Op: x86.CALL, Src: x86.Rel(0)}, Target: "san$report", Synth: true},
		{Labels: []string{ok}, Inst: x86.Inst{Op: x86.NOP}, Synth: true},
	}
}

// poisonFrame paints the two shadow granules covering [rbp, rbp+16) —
// the saved frame pointer and the return address — with the given value.
func poisonFrame(v int64) []serialize.Entry {
	return []serialize.Entry{
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.R10, Src: x86.RBP}),
		synth(x86.Inst{Op: x86.SHR, W: 8, Dst: x86.R10, Src: x86.Imm(3)}),
		synth(x86.Inst{Op: x86.MOV, W: 1,
			Dst: x86.Mem{Base: x86.R10, Index: x86.NoReg, Disp: ShadowBase}, Src: x86.Imm(v)}),
		synth(x86.Inst{Op: x86.MOV, W: 1,
			Dst: x86.Mem{Base: x86.R10, Index: x86.NoReg, Disp: ShadowBase + 1}, Src: x86.Imm(v)}),
	}
}

// belowRSP paints the two shadow granules covering [rsp-16, rsp). That
// region only ever holds a callee's return address and saved frame
// pointer, which are never accessed through indexed operands, so the
// poison is safe while the function runs — provided it is cleaned up.
func belowRSP(v int64) []serialize.Entry {
	return []serialize.Entry{
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.R10, Src: x86.RSP}),
		synth(x86.Inst{Op: x86.SUB, W: 8, Dst: x86.R10, Src: x86.Imm(16)}),
		synth(x86.Inst{Op: x86.SHR, W: 8, Dst: x86.R10, Src: x86.Imm(3)}),
		synth(x86.Inst{Op: x86.MOV, W: 1,
			Dst: x86.Mem{Base: x86.R10, Index: x86.NoReg, Disp: ShadowBase}, Src: x86.Imm(v)}),
		synth(x86.Inst{Op: x86.MOV, W: 1,
			Dst: x86.Mem{Base: x86.R10, Index: x86.NoReg, Disp: ShadowBase + 1}, Src: x86.Imm(v)}),
	}
}

// reportRoutine is the appended diagnostic: print "=SAN=\n" to stderr and
// exit(134).
func reportRoutine() []serialize.Entry {
	// The message is materialized on the stack to stay section-free.
	msg := []byte("=SAN=\n")
	var mk []serialize.Entry
	mk = append(mk, serialize.Entry{
		Labels: []string{"san$report"},
		Inst:   x86.Inst{Op: x86.ENDBR64},
		Synth:  true,
	})
	mk = append(mk,
		synth(x86.Inst{Op: x86.SUB, W: 8, Dst: x86.RSP, Src: x86.Imm(16)}),
	)
	for i, c := range msg {
		mk = append(mk, synth(x86.Inst{Op: x86.MOV, W: 1,
			Dst: x86.Mem{Base: x86.RSP, Index: x86.NoReg, Disp: int32(i)}, Src: x86.Imm(int64(c))}))
	}
	mk = append(mk,
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.RSI, Src: x86.RSP}),
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.RDX, Src: x86.Imm(int64(len(msg)))}),
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.RDI, Src: x86.Imm(2)}),
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.RAX, Src: x86.Imm(1)}), // write
		synth(x86.Inst{Op: x86.SYSCALL}),
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.RDI, Src: x86.Imm(134)}),
		synth(x86.Inst{Op: x86.MOV, W: 8, Dst: x86.RAX, Src: x86.Imm(60)}), // exit
		synth(x86.Inst{Op: x86.SYSCALL}),
		synth(x86.Inst{Op: x86.HLT}),
	)
	return mk
}

func synth(in x86.Inst) serialize.Entry {
	return serialize.Entry{Inst: in, Synth: true}
}
