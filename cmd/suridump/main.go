// Command suridump disassembles a binary and prints its superset CFG:
// harvested entries, blocks, discovered jump tables, and (with -dis) the
// full instruction listing.
//
// Usage:
//
//	suridump [-dis] [-no-ehframe] prog.bin
//	suridump -entries [-instrument pass,pass,...] [-no-ehframe] prog.bin
//
// -entries runs the full rewrite pipeline instead and prints the final
// symbolized stream S' one entry per line, each prefixed with a
// provenance mark:
//
//	' '  instruction copied from the original binary
//	'~'  entry synthesized by the pipeline (trap pads, table isolation)
//	'+'  entry inserted by an -instrument pass
//
// so instrumentation placement is auditable without running anything.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/elfx"
	"repro/internal/instr"
)

func main() {
	dis := flag.Bool("dis", false, "print full disassembly")
	noEh := flag.Bool("no-ehframe", false, "ignore call frame information")
	entries := flag.Bool("entries", false, "rewrite and print the final S' stream with provenance marks")
	instrument := flag.String("instrument", "", "standard instrumentation passes to apply in -entries mode (comma-separated)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: suridump [flags] prog.bin")
		os.Exit(2)
	}
	bin, err := os.ReadFile(flag.Arg(0))
	fail(err)

	if *entries {
		dumpEntries(bin, *instrument, *noEh)
		return
	}

	f, err := elfx.Read(bin)
	fail(err)

	fmt.Printf("entry %#x, PIE %v, CET %v\n", f.Entry, f.IsPIE(), f.HasCET())
	for _, s := range f.Sections {
		fmt.Printf("  section %-20s %#8x..%#8x %s\n", s.Name, s.Addr, s.Addr+s.Size, secFlags(s))
	}

	opts := cfg.DefaultOptions()
	opts.UseEhFrame = !*noEh
	g, err := cfg.Build(f, opts)
	fail(err)

	st := g.Stats()
	fmt.Printf("\nsuperset CFG: %d entries, %d blocks (%d invalid), %d instructions\n",
		st.Entries, st.Blocks, st.Invalid, st.Instructions)
	fmt.Printf("jump tables: %d (%d need dynamic base identification), %d over-approximated entries\n\n",
		st.Tables, st.MultiBase, st.TableEntries)

	for _, t := range g.Tables {
		fmt.Printf("table: jmp @%#x, load @%#x, base reg %s, bases %#x\n",
			t.JmpAddr, t.LoadAddr, t.BaseReg, t.Bases)
		for _, b := range t.Bases {
			fmt.Printf("  base %#x: %d entries\n", b, len(t.Entries[b]))
		}
	}

	if *dis {
		fmt.Println()
		for _, b := range g.SortedBlocks() {
			marker := ""
			if g.IsEntry(b.Addr) {
				marker = "  <entry>"
			}
			if b.Invalid {
				marker += "  <invalid>"
			}
			fmt.Printf("block %#x%s\n", b.Addr, marker)
			addrs := b.InstAddrs()
			for i, in := range b.Insts {
				fmt.Printf("  %#8x: %s\n", addrs[i], in)
			}
		}
	}
}

// dumpEntries rewrites the binary and prints S' with provenance marks.
func dumpEntries(bin []byte, passList string, noEh bool) {
	// AllowNonCET keeps the dump usable on binaries outside the rewrite
	// scope — this is an inspection tool, not a soundness claim.
	opts := core.Options{IgnoreEhFrame: noEh, AllowNonCET: true}
	if passList != "" {
		passes, err := instr.ParseList(passList)
		fail(err)
		opts.Passes = passes
	}
	res, err := core.Rewrite(bin, opts)
	fail(err)
	for i, e := range res.SPrime {
		mark := byte(' ')
		switch {
		case res.InstrMarks != nil && res.InstrMarks[i]:
			mark = '+'
		case e.Synth:
			mark = '~'
		}
		for _, l := range e.Labels {
			fmt.Printf("%c %s:\n", mark, l)
		}
		if e.Target != "" {
			if e.Addend != 0 {
				fmt.Printf("%c   %s\t# -> %s%+d\n", mark, e.Inst, e.Target, e.Addend)
			} else {
				fmt.Printf("%c   %s\t# -> %s\n", mark, e.Inst, e.Target)
			}
		} else {
			fmt.Printf("%c   %s\n", mark, e.Inst)
		}
	}
}

func secFlags(s *elfx.Section) string {
	out := ""
	if s.Flags&elfx.SHFWrite != 0 {
		out += "W"
	}
	if s.Flags&elfx.SHFExecinstr != 0 {
		out += "X"
	}
	if s.Type == elfx.SHTNobits {
		out += " (nobits)"
	}
	return out
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "suridump:", err)
		os.Exit(1)
	}
}
