// Package asm models relocatable assembly programs: ordered sections of
// labels, instructions with symbolic operands, and data directives. It is
// the in-memory form of the paper's intermediate assembly files S and S'
// (§3.3–§3.5): the compiler produces a Program, SURI's pipeline stages
// transform Programs, instrumentation inserts items into a Program, and
// Assemble turns a Program into placed bytes plus symbols and relocations.
package asm

import (
	"fmt"
	"strings"

	"repro/internal/x86"
)

// SectionFlags describe a section's mapping properties.
type SectionFlags uint8

// Section flag bits.
const (
	Alloc  SectionFlags = 1 << iota // mapped at run time
	Write                           // writable
	Exec                            // executable
	Nobits                          // occupies no file space (.bss)
)

// Section is a named, ordered sequence of items.
type Section struct {
	Name  string
	Flags SectionFlags
	Align uint64 // section start alignment; 0 means 1

	// Addr fixes the section's virtual address (the linker's
	// --section-start, used by the Emitter for layout preservation).
	Addr    uint64
	HasAddr bool

	Items []Item
}

// Program is a complete assembly translation unit.
type Program struct {
	Sections []*Section
	// Sets are ".set name, value" directives: absolute symbols that let
	// the program reference addresses it does not itself define (§3.4).
	Sets []Set
}

// Set is an absolute symbol definition.
type Set struct {
	Name string
	Addr uint64
}

// Section returns the section with the given name, creating it with the
// given flags if absent.
func (p *Program) Section(name string, flags SectionFlags) *Section {
	for _, s := range p.Sections {
		if s.Name == name {
			return s
		}
	}
	s := &Section{Name: name, Flags: flags, Align: 16}
	p.Sections = append(p.Sections, s)
	return s
}

// FindSection returns the named section or nil.
func (p *Program) FindSection(name string) *Section {
	for _, s := range p.Sections {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Item is one element of a section.
type Item interface{ isItem() }

// Label defines a symbol at the current location.
type Label struct {
	Name string
}

// Ins is a machine instruction, optionally with a symbolic operand. When
// Sym is non-empty the instruction's relative operand (branch Rel or
// RIP-relative memory displacement) is resolved to Sym+Add at assembly
// time, overriding the numeric value in X.
type Ins struct {
	X   x86.Inst
	Sym string
	Add int64

	// DispPlus/DispMinus, when set, add the link-time difference
	// (DispPlus - DispMinus) to the displacement of the instruction's
	// non-RIP memory operand. This reproduces how compilers fold a
	// cross-section symbol distance into a temporary-pointer access (the
	// S7 composite expressions of Table 1, Figures 1 and 2): the operand
	// "[R9 + (var - anchor)]" carries a constant that is only meaningful
	// for one specific section layout. The memory operand must have
	// Wide set so its encoded size is layout-independent.
	DispPlus  string
	DispMinus string
}

// Bytes is raw literal data.
type Bytes struct {
	Data []byte
}

// Quad is an 8-byte absolute address (".quad sym+add"). In a PIE it emits
// an R_X86_64_RELATIVE-style relocation so the loader can rebase it. This
// is the S1/S2 label form of Table 1.
type Quad struct {
	Sym string
	Add int64
}

// QuadLit is an 8-byte literal with no relocation.
type QuadLit uint64

// LongLit is a 4-byte literal with no relocation.
type LongLit uint32

// LongDiff is a 4-byte difference ".long plus - minus + add", the jump
// table entry form (S4 of Table 1).
type LongDiff struct {
	Plus  string
	Minus string
	Add   int64
}

// AlignTo pads to the given power-of-two boundary; executable sections are
// padded with multi-byte NOPs, others with zero bytes.
type AlignTo struct {
	N uint64
}

// Space reserves n zero bytes (".skip"/".zero"). In Nobits sections it
// contributes to the size without emitting file bytes.
type Space struct {
	N uint64
}

func (Label) isItem()    {}
func (Ins) isItem()      {}
func (Bytes) isItem()    {}
func (Quad) isItem()     {}
func (QuadLit) isItem()  {}
func (LongLit) isItem()  {}
func (LongDiff) isItem() {}
func (AlignTo) isItem()  {}
func (Space) isItem()    {}

// Convenience constructors used heavily by the compiler and the rewriter.

// L appends a label.
func (s *Section) L(name string) { s.Items = append(s.Items, Label{Name: name}) }

// I appends a plain instruction.
func (s *Section) I(in x86.Inst) { s.Items = append(s.Items, Ins{X: in}) }

// IS appends an instruction whose relative operand targets sym+add.
func (s *Section) IS(in x86.Inst, sym string, add int64) {
	s.Items = append(s.Items, Ins{X: in, Sym: sym, Add: add})
}

// IDiff appends an instruction whose memory-operand displacement is
// adjusted by the link-time difference (plus - minus). The operand's Wide
// flag is set automatically.
func (s *Section) IDiff(in x86.Inst, plus, minus string) {
	if m, ok := in.Dst.(x86.Mem); ok && !m.Rip {
		m.Wide = true
		in.Dst = m
	} else if m, ok := in.Src.(x86.Mem); ok && !m.Rip {
		m.Wide = true
		in.Src = m
	}
	s.Items = append(s.Items, Ins{X: in, DispPlus: plus, DispMinus: minus})
}

// Raw appends literal bytes.
func (s *Section) Raw(b []byte) { s.Items = append(s.Items, Bytes{Data: b}) }

// Q appends ".quad sym+add".
func (s *Section) Q(sym string, add int64) { s.Items = append(s.Items, Quad{Sym: sym, Add: add}) }

// D8 appends an 8-byte literal.
func (s *Section) D8(v uint64) { s.Items = append(s.Items, QuadLit(v)) }

// D4 appends a 4-byte literal.
func (s *Section) D4(v uint32) { s.Items = append(s.Items, LongLit(v)) }

// Diff appends ".long plus - minus".
func (s *Section) Diff(plus, minus string, add int64) {
	s.Items = append(s.Items, LongDiff{Plus: plus, Minus: minus, Add: add})
}

// Align pads to an n-byte boundary.
func (s *Section) Align2(n uint64) { s.Items = append(s.Items, AlignTo{N: n}) }

// Skip reserves n zero bytes.
func (s *Section) Skip(n uint64) { s.Items = append(s.Items, Space{N: n}) }

// String renders an item in GNU-as-like syntax (see Print for programs).
func ItemString(it Item) string {
	switch v := it.(type) {
	case Label:
		return v.Name + ":"
	case Ins:
		return "\t" + insString(v)
	case Bytes:
		return fmt.Sprintf("\t.byte %d bytes", len(v.Data))
	case Quad:
		return "\t.quad " + symPlus(v.Sym, v.Add)
	case QuadLit:
		return fmt.Sprintf("\t.quad 0x%x", uint64(v))
	case LongLit:
		return fmt.Sprintf("\t.long 0x%x", uint32(v))
	case LongDiff:
		s := fmt.Sprintf("\t.long %s - %s", v.Plus, v.Minus)
		if v.Add != 0 {
			s += fmt.Sprintf(" + %d", v.Add)
		}
		return s
	case AlignTo:
		return fmt.Sprintf("\t.align %d", v.N)
	case Space:
		return fmt.Sprintf("\t.skip %d", v.N)
	}
	return fmt.Sprintf("\t? %T", it)
}

func symPlus(sym string, add int64) string {
	switch {
	case add > 0:
		return fmt.Sprintf("%s + 0x%x", sym, add)
	case add < 0:
		return fmt.Sprintf("%s - 0x%x", sym, -add)
	default:
		return sym
	}
}

// insString renders an instruction, substituting the symbolic operand.
func insString(v Ins) string {
	if v.Sym == "" {
		return v.X.String()
	}
	in := v.X
	switch in.Op {
	case x86.JMP, x86.JCC, x86.CALL:
		if _, ok := in.Src.(x86.Rel); ok {
			return fmt.Sprintf("%s %s", mnemonicOf(in), symPlus(v.Sym, v.Add))
		}
	}
	if m, ok := in.MemArg(); ok && m.Rip {
		// Render "[RIP+sym+add]" in place of the numeric displacement.
		full := in.String()
		return strings.Replace(full, ripOperand(m.Disp), "[RIP+"+symPlusCompact(v.Sym, v.Add)+"]", 1)
	}
	return in.String()
}

// ripOperand reproduces how x86.Mem renders a RIP-relative operand.
func ripOperand(disp int32) string {
	switch {
	case disp < 0:
		return fmt.Sprintf("[RIP-0x%x]", uint32(-disp))
	case disp > 0:
		return fmt.Sprintf("[RIP+0x%x]", uint32(disp))
	default:
		return "[RIP]"
	}
}

func symPlusCompact(sym string, add int64) string {
	switch {
	case add > 0:
		return fmt.Sprintf("%s+0x%x", sym, add)
	case add < 0:
		return fmt.Sprintf("%s-0x%x", sym, -add)
	default:
		return sym
	}
}

func mnemonicOf(in x86.Inst) string {
	s := in.String()
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return s[:i]
		}
	}
	return s
}
