package prog

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/cc"
	"repro/internal/emu"
	"repro/internal/mini"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate("p", 42, smallShape)
	b := Generate("p", 42, smallShape)
	ra, err := mini.Run(a.Module, a.Inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	rb, err := mini.Run(b.Module, b.Inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra.Output, rb.Output) || ra.Exit != rb.Exit {
		t.Error("generation is not deterministic")
	}
}

func TestGeneratedProgramsWellDefined(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := Generate("w", seed, mediumShape)
		for i, in := range p.Inputs {
			res, err := mini.Run(p.Module, in)
			if err != nil {
				t.Fatalf("seed %d input %d: %v", seed, i, err)
			}
			if len(res.Output) == 0 {
				t.Errorf("seed %d input %d: produces no output", seed, i)
			}
		}
	}
}

func TestSuitesShape(t *testing.T) {
	suites := QuickSuites()
	if len(suites) != 4 {
		t.Fatalf("got %d suites", len(suites))
	}
	names := map[string]bool{}
	for _, s := range suites {
		names[s.Name] = true
		if len(s.Programs) < 2 {
			t.Errorf("suite %s has %d programs", s.Name, len(s.Programs))
		}
		for _, p := range s.Programs {
			if p.Module.Func("main") == nil {
				t.Errorf("%s: no main", p.Name)
			}
			if len(p.Inputs) == 0 {
				t.Errorf("%s: no test inputs", p.Name)
			}
		}
	}
	for _, want := range []string{"coreutils", "binutils", "spec2006", "spec2017"} {
		if !names[want] {
			t.Errorf("missing suite %s", want)
		}
	}
	if got := TotalPrograms(suites); got < 8 {
		t.Errorf("TotalPrograms = %d", got)
	}
}

func TestFullScaleCounts(t *testing.T) {
	full := specs(1.0)
	wants := map[string]int{
		"coreutils": FullCoreutils, "binutils": FullBinutils,
		"spec2006": FullSPEC2006, "spec2017": FullSPEC2017,
	}
	for _, sp := range full {
		if sp.Count != wants[sp.Name] {
			t.Errorf("%s: count %d, want %d", sp.Name, sp.Count, wants[sp.Name])
		}
	}
}

func inputBytes(vals []int64) []byte {
	out := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return out
}

// TestDifferentialCompileRun is the triple-agreement check: interpreter,
// compiler, and emulator must agree on generated programs across
// optimization levels and compiler styles.
func TestDifferentialCompileRun(t *testing.T) {
	cfgs := []cc.Config{
		{Compiler: cc.GCC11, Linker: cc.LD, Opt: cc.O0, CET: true, EhFrame: true},
		{Compiler: cc.GCC13, Linker: cc.Gold, Opt: cc.O2, CET: true, EhFrame: true},
		{Compiler: cc.Clang10, Linker: cc.LD, Opt: cc.O3, CET: true, EhFrame: true},
		{Compiler: cc.Clang13, Linker: cc.Gold, Opt: cc.Os, CET: true, EhFrame: true},
	}
	for seed := int64(100); seed < 106; seed++ {
		p := Generate("d", seed, mediumShape)
		for _, cfg := range cfgs {
			bin, err := cc.Compile(p.Module, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: compile: %v", seed, cfg, err)
			}
			for i, in := range p.Inputs {
				want, err := mini.Run(p.Module, in)
				if err != nil {
					t.Fatal(err)
				}
				got, err := emu.Run(bin, emu.Options{Input: inputBytes(in)})
				if err != nil {
					t.Fatalf("seed %d %s input %d: emu: %v", seed, cfg, i, err)
				}
				if !bytes.Equal(got.Stdout, want.Output) {
					t.Fatalf("seed %d %s input %d:\nemu:    %q\ninterp: %q",
						seed, cfg, i, got.Stdout, want.Output)
				}
				if got.Exit != want.Exit {
					t.Fatalf("seed %d %s input %d: exit %d vs %d", seed, cfg, i, got.Exit, want.Exit)
				}
			}
		}
	}
}

func TestTrueTableEntriesTracked(t *testing.T) {
	p := Generate("tt", 7, largeShape)
	if p.TrueTableEntries == 0 {
		t.Error("no ground-truth table entries recorded")
	}
}

// TestGeneratedSourceRoundTrip: generated programs survive a
// format -> parse round trip with identical behaviour, tying the
// generator, printer, parser, and interpreter together.
func TestGeneratedSourceRoundTrip(t *testing.T) {
	for seed := int64(200); seed < 206; seed++ {
		p := Generate("rt", seed, smallShape)
		src := mini.Format(p.Module)
		m2, err := mini.Parse("rt2", src)
		if err != nil {
			t.Fatalf("seed %d: reparse failed: %v", seed, err)
		}
		for _, in := range p.Inputs {
			r1, err := mini.Run(p.Module, in)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := mini.Run(m2, in)
			if err != nil {
				t.Fatalf("seed %d: reparsed module failed: %v", seed, err)
			}
			if !bytes.Equal(r1.Output, r2.Output) || r1.Exit != r2.Exit {
				t.Fatalf("seed %d: round-trip behaviour differs", seed)
			}
		}
	}
}

func TestNoRuntimeNameCollisions(t *testing.T) {
	reserved := map[string]bool{}
	for _, n := range cc.RuntimeFuncNames(true) {
		reserved[n] = true
	}
	for seed := int64(0); seed < 10; seed++ {
		p := Generate("n", seed, mediumShape)
		for _, f := range p.Module.Funcs {
			if reserved[f.Name] {
				t.Errorf("seed %d: generated function shadows runtime symbol %q", seed, f.Name)
			}
		}
	}
}
