package emu

import (
	"bytes"
	"testing"
)

// TestFetchSpanSemantics pins down the ranged-fetch contract: it copies
// across executable page boundaries, stops at the first unmapped or
// non-executable page, and returns the byte count.
func TestFetchSpanSemantics(t *testing.T) {
	m := NewMemory()
	base := uint64(0x40_0000)
	m.Map(base, 2*PageSize, PermR|PermX)
	fill := make([]byte, 2*PageSize)
	for i := range fill {
		fill[i] = byte(i)
	}
	// Write needs PermW; poke through a temporary permission change.
	m.Protect(base, 2*PageSize, PermR|PermW)
	if err := m.Write(base, fill); err != nil {
		t.Fatal(err)
	}
	m.Protect(base, 2*PageSize, PermR|PermX)

	var buf [15]byte
	// Straddle the page boundary: 8 bytes before, 7 after.
	n := m.FetchSpan(base+PageSize-8, buf[:])
	if n != len(buf) {
		t.Fatalf("FetchSpan across pages = %d bytes, want %d", n, len(buf))
	}
	if !bytes.Equal(buf[:n], fill[PageSize-8:PageSize-8+15]) {
		t.Error("FetchSpan bytes differ from page content")
	}
	// Stop at the end of the mapping.
	n = m.FetchSpan(base+2*PageSize-5, buf[:])
	if n != 5 {
		t.Errorf("FetchSpan at mapping end = %d bytes, want 5", n)
	}
	// A non-executable page yields nothing.
	m.Map(base+4*PageSize, PageSize, PermR)
	if n := m.FetchSpan(base+4*PageSize, buf[:]); n != 0 {
		t.Errorf("FetchSpan on non-exec page = %d bytes, want 0", n)
	}
	// Unmapped yields nothing.
	if n := m.FetchSpan(0xdead_0000, buf[:]); n != 0 {
		t.Errorf("FetchSpan on unmapped = %d bytes, want 0", n)
	}
}

// TestFetchSpanNoAutoRW ensures the exec fetch path never maps the
// sanitizer shadow region on demand — only data accesses may.
func TestFetchSpanNoAutoRW(t *testing.T) {
	m := NewMemory()
	m.AddAutoRW(Range{Start: ShadowStart, End: ShadowEnd})
	var buf [8]byte
	if n := m.FetchSpan(ShadowStart+0x100, buf[:]); n != 0 {
		t.Errorf("FetchSpan auto-mapped the shadow region (%d bytes)", n)
	}
	if _, ok := m.pages[(ShadowStart+0x100)&^uint64(PageSize-1)]; ok {
		t.Error("FetchSpan created a shadow page")
	}
}

// TestFetchSpanAllocs gates the fetch hot path at zero allocations.
func TestFetchSpanAllocs(t *testing.T) {
	m := NewMemory()
	base := uint64(0x40_0000)
	m.Map(base, 2*PageSize, PermR|PermX)
	var buf [15]byte
	if avg := testing.AllocsPerRun(500, func() {
		m.FetchSpan(base+PageSize-8, buf[:])
	}); avg != 0 {
		t.Errorf("FetchSpan allocates %.1f times per call, want 0", avg)
	}
}

// TestMachineResetPreservesPlanes checks the Reset contract: run state
// is zeroed while the predecoded page planes survive for the next
// Reload of the same image.
func TestMachineResetPreservesPlanes(t *testing.T) {
	m := NewMachine()
	m.Steps = 99
	m.Stdout = []byte("x")
	m.RIP = 0x1234
	m.MaxSteps = 7
	m.planes[0x1000] = nil // marker entry
	m.Reset()
	if m.Steps != 0 || len(m.Stdout) != 0 || m.RIP != 0 {
		t.Errorf("Reset left run state: steps=%d stdout=%d rip=%#x", m.Steps, len(m.Stdout), m.RIP)
	}
	if m.MaxSteps != defaultMaxSteps {
		t.Errorf("Reset MaxSteps = %d, want default", m.MaxSteps)
	}
	if _, ok := m.planes[0x1000]; !ok {
		t.Error("Reset dropped the predecoded planes")
	}
}
