// Package suri is a Go reproduction of "Towards Sound Reassembly of
// Modern x86-64 Binaries" (Kim, Kim, Cha — ASPLOS 2025): the SURI
// reassembler for CET-enabled x86-64 PIE binaries, together with every
// substrate the system needs — an x86-64 encoder/decoder, an assembler,
// an ELF64 reader/writer, a compiler producing CET/PIE binaries from a
// small C-like language, an emulator with CET enforcement, two baseline
// reassemblers, and the paper's full evaluation harness.
//
// The headline API is Rewrite: it takes the bytes of a CET-enabled PIE
// binary and returns a rewritten binary whose original sections are
// preserved at their original addresses, whose code has been copied,
// symbolized, and (optionally) instrumented, and which behaves exactly
// like the original.
//
//	out, err := suri.Rewrite(binary, suri.Options{})
//
// Instrumentation inserts code into S', the symbolized assembly stream:
//
//	out, err := suri.Rewrite(binary, suri.Options{
//		Instrument: func(entries []suri.Entry) ([]suri.Entry, error) {
//			// insert, e.g., counters before instructions
//			return entries, nil
//		},
//	})
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the system inventory.
package suri

import (
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/harden"
	"repro/internal/instr"
	"repro/internal/obs"
	"repro/internal/serialize"
)

// Entry is one element of the symbolized assembly stream S' (§3.3–3.5 of
// the paper). Instrumenters receive and return slices of entries.
type Entry = serialize.Entry

// Options configure a rewrite. The zero value is the standard pipeline.
type Options = core.Options

// Result is a completed rewrite: the binary, the final S' stream, the
// superset CFG, and the pipeline statistics of §4.2.4/§4.3.1.
type Result = core.Result

// Stats aggregates pipeline measurements.
type Stats = core.Stats

// Instrumenter edits S' before emission. It is the raw escape hatch;
// prefer composable Pass values (Options.Passes), which are validated,
// budgeted, and cacheable.
type Instrumenter = core.Instrumenter

// Pass is one composable instrumentation pass over S'. Set
// Options.Passes to run passes inside the pipeline's instrument stage:
//
//	passes, _ := suri.ParsePasses("coverage,shadowstack")
//	out, err := suri.Rewrite(binary, suri.Options{Passes: passes})
//
// The standard library passes are CoveragePass, CountersPass,
// CallTracePass, and ShadowStackPass; custom passes implement the
// interface directly (see internal/instr for the contract).
type Pass = instr.Pass

// CoveragePass is the AFL-style coverage bitmap pass (edge coverage by
// default; Blocks selects per-block coverage).
type CoveragePass = instr.Coverage

// CountersPass counts basic-block executions in a payload array.
type CountersPass = instr.Counters

// CallTracePass records, per indirect call/jump site, how many times it
// fired and the last target it reached.
type CallTracePass = instr.CallTrace

// ShadowStackPass maintains a software shadow stack and kills the
// program (exit 135, "=SS=" on stderr) on a return-address mismatch.
type ShadowStackPass = instr.ShadowStack

// ParsePasses resolves a comma-separated list of standard pass names
// ("coverage", "counters", "calltrace", "shadowstack") into Pass values;
// it is the parser behind suri -instrument and surid ?instrument=.
func ParsePasses(list string) ([]Pass, error) { return instr.ParseList(list) }

// PassNames returns the standard pass names ParsePasses accepts, sorted.
func PassNames() []string { return instr.Names() }

// ErrNotCETPIE is returned for binaries outside the problem scope (§2.1).
var ErrNotCETPIE = core.ErrNotCETPIE

// Rewrite runs the full SURI pipeline (Figure 4) over an ELF binary
// image: superset CFG construction, serialization, CET-based pointer
// repair, superset symbolization, optional instrumentation, and
// layout-preserving emission.
func Rewrite(bin []byte, opts Options) (*Result, error) {
	return core.Rewrite(bin, opts)
}

// TrapLabel is the landing pad label for bogus jump-table targets; it is
// available to instrumenters that synthesize branches.
const TrapLabel = serialize.TrapLabel

// StageError tags a pipeline failure with the Figure 4 stage that died;
// Stage extracts the stage name from any error chain.
type StageError = core.StageError

// Stage returns the pipeline stage recorded in err's chain, or "".
func Stage(err error) string { return core.Stage(err) }

// Pool is a bounded work-stealing worker pool for running many
// rewrites concurrently; see NewPool.
type Pool = farm.Pool

// PoolConfig configures a Pool.
type PoolConfig = farm.Config

// Cache is a content-addressed rewrite-artifact cache (SHA-256 of the
// input binary + options fingerprint) with LRU eviction and optional
// disk persistence; see NewCache.
type Cache = farm.Cache

// RewriteResult is a farm-served rewrite (binary, stats, cache
// provenance).
type RewriteResult = farm.RewriteResult

// NewPool starts a rewrite farm:
//
//	pool := suri.NewPool(suri.PoolConfig{Workers: 8, Cache: cache})
//	defer pool.Close()
//	res, err := pool.Rewrite(ctx, binary, suri.Options{})
//
// Jobs get per-job deadlines, panic isolation, bounded retry for
// transient failures, and queue backpressure; cmd/surid serves this
// same pool over HTTP.
func NewPool(cfg PoolConfig) *Pool { return farm.New(cfg) }

// NewCache returns an artifact cache holding maxEntries rewrites in
// memory (LRU); a non-empty dir enables write-through disk persistence.
func NewCache(maxEntries int, dir string) (*Cache, error) {
	return farm.NewCache(maxEntries, dir)
}

// Budget bounds the pipeline's resource consumption (CFG rounds, decoded
// instructions, blocks, jump-table entries, emulator steps). The zero
// value means "defaults": generous bounds that real binaries never hit
// but that stop runaway inputs deterministically.
type Budget = harden.Budget

// BudgetExceeded is the typed error a governor returns when a Budget
// bound is crossed; errors.Is(err, ErrBudget) matches any resource.
type BudgetExceeded = harden.BudgetExceeded

// ErrBudget matches any budget exhaustion; ErrCanceled matches the
// wall-clock variant (a canceled Options.Cancel channel).
var (
	ErrBudget   = harden.ErrBudget
	ErrCanceled = harden.ErrCanceled
)

// Verdict classifies a validated rewrite: "validated" (first attempt
// passed differential execution), "degraded" (a retry under widened
// budgets passed), or "fallback" (the original binary was returned
// unmodified because no attempt produced a validated rewrite).
type Verdict = core.Verdict

// Verdict values.
const (
	VerdictValidated = core.VerdictValidated
	VerdictDegraded  = core.VerdictDegraded
	VerdictFallback  = core.VerdictFallback
)

// ValidateOptions configure RewriteValidated: the pipeline Options plus
// the input vectors to differentially execute under.
type ValidateOptions = core.ValidateOptions

// ValidatedResult is a guarded rewrite outcome: the binary to ship
// (original bytes on fallback), the verdict, and attempt accounting.
type ValidatedResult = core.ValidatedResult

// Collector is the observability bundle Options.Obs accepts: a span
// trace, a metric registry, and an optional flight recorder. A nil
// *Collector disables all collection at zero cost; EnableFlight
// attaches the bounded always-on event ring a service wants for crash
// forensics.
type Collector = obs.Collector

// FlightEvent is one structured flight-recorder entry (stage
// completions, stage errors, budget trips, cache probes, verdicts).
type FlightEvent = obs.Event

// NewCollector returns a live collector on the system monotonic clock:
//
//	col := suri.NewCollector().EnableFlight(4096)
//	out, err := suri.Rewrite(binary, suri.Options{Obs: col})
//	fmt.Print(col.Text()) // per-stage spans + pipeline metrics
func NewCollector() *Collector { return obs.New() }

// RewriteValidated is Rewrite with a safety net: it differentially
// executes the rewritten binary against the original in the emulator,
// retries under widened budgets on failure, and — if no attempt
// validates — returns the original binary unmodified with the fallback
// verdict. It never makes the caller worse off than not rewriting.
func RewriteValidated(bin []byte, opts ValidateOptions) (*ValidatedResult, error) {
	return core.RewriteValidated(bin, opts)
}
