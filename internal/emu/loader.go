package emu

import (
	"fmt"

	"repro/internal/elfx"
	"repro/internal/x86"
)

// Options configure loading and execution.
type Options struct {
	// Bias is the PIE load bias (ASLR slide). Zero means DefaultBias.
	Bias uint64

	// StackTop/StackSize place the stack; zero means defaults.
	StackTop  uint64
	StackSize uint64

	// Input is the byte stream served by the read syscall.
	Input []byte

	// MaxSteps bounds execution; zero means the machine default.
	MaxSteps uint64

	// Shadow maps the sanitizer shadow region read-write on demand.
	Shadow bool

	// DisableCET turns off IBT/shadow-stack enforcement even for
	// CET-enabled binaries.
	DisableCET bool

	// Profile enables execution profiling (opcode histogram, block
	// heat, syscall log, CET event counters); the profile is returned
	// in Result.Prof. Disabled costs nothing.
	Profile bool

	// LegacyDecode selects the pre-plane fetch path (per-address map
	// cache, byte-at-a-time fetch) — the paired-benchmark baseline.
	// It forces the interpreter regardless of Engine.
	LegacyDecode bool

	// Engine selects the execution engine: EngineAuto (default) runs
	// the tiered engine when linked in, EngineInterpreter forces the
	// interpreter, EngineTiered fails if no tiered engine is linked.
	Engine EngineKind

	// HeatSeed maps runtime addresses (load bias applied) to block
	// execution counts from a prior profiled run (Profile.Heat /
	// "suri.heat.v1"). The tiered engine translates seeded-hot blocks
	// on first encounter instead of waiting for its own counter.
	HeatSeed map[uint64]uint64

	// Capture, if non-empty (Start < End), snapshots the given
	// link-time address range — typically the .suri.instr payload
	// section — from guest memory after the run finishes. The load
	// bias is applied automatically; the bytes land in
	// Result.Captured (best-effort: nil if the range is unmapped).
	Capture Range
}

// Default placement constants.
const (
	DefaultBias      = 0x1000_0000
	DefaultStackTop  = 0x7FF0_0000
	DefaultStackSize = 0x10_0000

	// ShadowRange is the sanitizer shadow region (see internal/cc:
	// shadow byte for A is at 0x70000000 + A>>3).
	ShadowStart = 0x7000_0000
	ShadowEnd   = 0x7000_0000 + 0x1000_0000

	// tlsTP is the thread pointer (FS base) for PT_TLS binaries: the
	// TLS block occupies [tlsTP-memsz, tlsTP), below the stack region.
	tlsTP       = 0x7FD0_0000
	tlsAreaSize = 0x1_0000
)

// Load maps an ELF binary into a fresh machine, applies its relocations
// at the chosen bias, and points RIP at the entry point.
func Load(bin []byte, opts Options) (*Machine, error) {
	f, err := elfx.Read(bin)
	if err != nil {
		return nil, err
	}
	return LoadFile(f, opts)
}

// LoadFile is Load for an already-parsed ELF file (Raw must be set).
func LoadFile(f *elfx.File, opts Options) (*Machine, error) {
	m := NewMachine()
	if err := loadInto(m, f, opts); err != nil {
		return nil, err
	}
	return m, nil
}

// Reload re-initializes a machine for a fresh run of the same image,
// preserving its predecoded page planes. The caller contract is that f
// is the identical file previously loaded into m, at the same bias —
// executable pages are then byte-identical, so the decode planes carry
// over soundly. Validated rewrites use this to amortize decoding across
// retry attempts and per-input runs.
func Reload(m *Machine, f *elfx.File, opts Options) error {
	m.Reset()
	return loadInto(m, f, opts)
}

func loadInto(m *Machine, f *elfx.File, opts Options) error {
	if f.Raw == nil {
		return fmt.Errorf("emu: file has no raw bytes")
	}
	bias := opts.Bias
	if bias == 0 {
		bias = DefaultBias
	}
	stackTop := opts.StackTop
	if stackTop == 0 {
		stackTop = DefaultStackTop
	}
	stackSize := opts.StackSize
	if stackSize == 0 {
		stackSize = DefaultStackSize
	}

	if opts.MaxSteps != 0 {
		m.MaxSteps = opts.MaxSteps
	}
	if opts.Profile {
		m.Prof = NewProfile()
	}
	m.LegacyDecode = opts.LegacyDecode
	m.Engine = opts.Engine
	if opts.HeatSeed != nil {
		m.heatSeed = opts.HeatSeed
	}
	m.SetInput(opts.Input)

	// Decode caches (page planes, translations) are sound only while
	// the executable bytes they were built from are identical. Reload
	// documents a same-image contract, but trusting it silently would
	// turn a caller bug into wrong execution — so detect a different
	// image or bias here and invalidate instead.
	var img *byte
	if len(f.Raw) > 0 {
		img = &f.Raw[0]
	}
	if m.loadedImg != nil && (m.loadedImg != img || m.loadedBias != bias) {
		m.InvalidatePlanes()
	}
	m.loadedImg, m.loadedBias = img, bias

	// Map PT_LOAD segments read-write first, copy file content, apply
	// relocations, then drop to the real permissions (the kernel+ld.so
	// equivalent of RELRO processing).
	type pending struct {
		vaddr, memsz uint64
		perm         uint8
	}
	var finals []pending
	for _, seg := range f.Segments {
		if seg.Type != elfx.PTLoad || seg.Memsz == 0 {
			continue
		}
		va := bias + seg.Vaddr
		m.Mem.Map(va, seg.Memsz, PermR|PermW)
		if seg.Filesz > 0 {
			if seg.Off+seg.Filesz > uint64(len(f.Raw)) {
				return fmt.Errorf("emu: segment at %#x overruns file", seg.Vaddr)
			}
			if err := m.Mem.Write(va, f.Raw[seg.Off:seg.Off+seg.Filesz]); err != nil {
				return err
			}
		}
		perm := PermR
		if seg.Flags&elfx.PFW != 0 {
			perm |= PermW
		}
		if seg.Flags&elfx.PFX != 0 {
			perm |= PermX
		}
		if perm&PermW != 0 && perm&PermX != 0 {
			return fmt.Errorf("emu: W+X segment at %#x refused", seg.Vaddr)
		}
		finals = append(finals, pending{vaddr: va, memsz: seg.Memsz, perm: perm})
	}

	for _, r := range relocations(f) {
		if r.Type != elfx.RX8664Relative {
			return fmt.Errorf("emu: unsupported relocation type %d", r.Type)
		}
		if err := m.Mem.WriteU64(bias+r.Off, bias+uint64(r.Addend), 8); err != nil {
			return fmt.Errorf("emu: relocation at %#x: %w", r.Off, err)
		}
	}

	for _, p := range finals {
		m.Mem.Protect(p.vaddr, p.memsz, p.perm)
	}

	// Stack.
	m.Mem.Map(stackTop-stackSize, stackSize, PermR|PermW)
	m.Regs[x86.RSP] = stackTop - 64

	// Thread-local storage (x86-64 variant 2): the thread pointer (FS
	// base) sits at the end of the thread's TLS block, so local-exec
	// access is fs:[-offset]. Like the glibc TCB, [TP] holds the thread
	// pointer itself, which compiled code loads (mov r, fs:[0]) to form
	// ordinary base+index addresses into the block.
	for _, seg := range f.Segments {
		if seg.Type != elfx.PTTLS {
			continue
		}
		if seg.Memsz > tlsAreaSize-16 {
			return fmt.Errorf("emu: PT_TLS block of %d bytes exceeds the %d-byte TLS area", seg.Memsz, tlsAreaSize)
		}
		m.Mem.Map(tlsTP-tlsAreaSize, tlsAreaSize+PageSize, PermR|PermW)
		if seg.Filesz > 0 {
			if seg.Off+seg.Filesz > uint64(len(f.Raw)) {
				return fmt.Errorf("emu: PT_TLS segment at %#x overruns file", seg.Vaddr)
			}
			if err := m.Mem.Write(tlsTP-seg.Memsz, f.Raw[seg.Off:seg.Off+seg.Filesz]); err != nil {
				return err
			}
		}
		if err := m.Mem.WriteU64(tlsTP, tlsTP, 8); err != nil {
			return err
		}
		m.FSBase = tlsTP
		break
	}

	if opts.Shadow {
		m.Mem.AddAutoRW(Range{Start: ShadowStart, End: ShadowEnd})
	}

	m.RIP = bias + f.Entry
	m.EnforceCET = f.HasCET() && !opts.DisableCET
	return nil
}

// relocations returns the file's rebase relocations, preferring the
// PT_DYNAMIC route (DT_RELA/DT_RELASZ) and falling back to the .rela.dyn
// section.
func relocations(f *elfx.File) []elfx.Rela {
	for _, seg := range f.Segments {
		if seg.Type != elfx.PTDynamic {
			continue
		}
		if seg.Off+seg.Filesz > uint64(len(f.Raw)) {
			break
		}
		dyn := elfx.ParseDynamic(f.Raw[seg.Off : seg.Off+seg.Filesz])
		var relaAddr, relaSz uint64
		for _, e := range dyn {
			switch int64(e[0]) {
			case elfx.DTRela:
				relaAddr = e[1]
			case elfx.DTRelasz:
				relaSz = e[1]
			}
		}
		if relaAddr == 0 || relaSz == 0 {
			break
		}
		// DT_RELA holds a vaddr; in our identity-offset files vaddr ==
		// file offset for mapped content.
		if relaAddr+relaSz <= uint64(len(f.Raw)) {
			return elfx.ParseRela(f.Raw[relaAddr : relaAddr+relaSz])
		}
	}
	if sec := f.Section(".rela.dyn"); sec != nil {
		return elfx.ParseRela(sec.Data)
	}
	return nil
}

// Result summarizes a complete program execution.
type Result struct {
	Stdout []byte
	Stderr []byte
	Exit   int
	Steps  uint64

	// Prof is the execution profile when Options.Profile was set.
	Prof *Profile

	// Tier is the tiered engine's counters, nil for interpreted runs.
	Tier *TierStats

	// Captured is the Options.Capture range's post-run contents.
	Captured []byte
}

// Run loads and executes a binary to completion.
func Run(bin []byte, opts Options) (*Result, error) {
	m, err := Load(bin, opts)
	if err != nil {
		return nil, err
	}
	if err := m.Run(); err != nil {
		return &Result{Stdout: m.Stdout, Stderr: m.Stderr, Exit: -1, Steps: m.Steps,
			Prof: m.Prof, Tier: m.TierStats(), Captured: capture(m, opts)}, err
	}
	_, code := m.Exited()
	return &Result{Stdout: m.Stdout, Stderr: m.Stderr, Exit: code, Steps: m.Steps,
		Prof: m.Prof, Tier: m.TierStats(), Captured: capture(m, opts)}, nil
}

// capture snapshots the Options.Capture range (link-time addresses)
// from guest memory, applying the load bias.
func capture(m *Machine, opts Options) []byte {
	if opts.Capture.Start >= opts.Capture.End {
		return nil
	}
	bias := opts.Bias
	if bias == 0 {
		bias = DefaultBias
	}
	buf := make([]byte, opts.Capture.End-opts.Capture.Start)
	if err := m.Mem.Read(bias+opts.Capture.Start, buf); err != nil {
		return nil
	}
	return buf
}
