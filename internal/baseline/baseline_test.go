package baseline_test

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/baseline/ddisasm"
	"repro/internal/baseline/egalito"
	"repro/internal/cc"
	"repro/internal/emu"
	"repro/internal/mini"
	"repro/internal/prog"
)

func inputBytes(vals []int64) []byte {
	out := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return out
}

// benign is a program without the hard symbolization traps: no composite
// expressions exercised (O0/O1), tables guarded. Baselines should handle
// it.
func benign() *mini.Module {
	return &mini.Module{
		Name: "benign",
		Globals: []*mini.Global{
			{Name: "arr", Elem: 8, Count: 8, Init: []int64{1, 2, 3, 4, 5, 6, 7, 8}},
		},
		Funcs: []*mini.Func{
			{Name: "sq", NParams: 1, Body: []mini.Stmt{
				mini.Return{E: mini.Bin{Op: mini.Mul, L: mini.Var("p0"), R: mini.Var("p0")}}}},
			{
				Name:   "main",
				Locals: []string{"i", "s"},
				Body: []mini.Stmt{
					mini.Assign{Name: "i", E: mini.Const(0)},
					mini.Assign{Name: "s", E: mini.Const(0)},
					mini.While{
						Cond: mini.Bin{Op: mini.Lt, L: mini.Var("i"), R: mini.Const(8)},
						Body: []mini.Stmt{
							mini.Assign{Name: "s", E: mini.Bin{Op: mini.Add, L: mini.Var("s"),
								R: mini.Call{Name: "sq", Args: []mini.Expr{mini.LoadG{G: "arr", Idx: mini.Var("i")}}}}},
							mini.Assign{Name: "i", E: mini.Bin{Op: mini.Add, L: mini.Var("i"), R: mini.Const(1)}},
						},
					},
					mini.Print{E: mini.Var("s")},
				},
			},
		},
	}
}

func runPair(t *testing.T, name string, orig, rewritten []byte, input []int64) (same bool) {
	t.Helper()
	a, err := emu.Run(orig, emu.Options{Input: inputBytes(input)})
	if err != nil {
		t.Fatalf("%s: original run: %v", name, err)
	}
	b, err := emu.Run(rewritten, emu.Options{Input: inputBytes(input)})
	if err != nil {
		return false
	}
	return bytes.Equal(a.Stdout, b.Stdout) && a.Exit == b.Exit
}

func TestBaselinesHandleBenignBinary(t *testing.T) {
	cfg := cc.Config{Compiler: cc.GCC11, Linker: cc.LD, Opt: cc.O1, CET: true, EhFrame: true}
	bin, err := cc.Compile(benign(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tool := range []baseline.Rewriter{ddisasm.New(), egalito.New()} {
		res, err := tool.Rewrite(bin)
		if err != nil {
			t.Fatalf("%s failed to rewrite benign binary: %v", tool.Name(), err)
		}
		if !runPair(t, tool.Name(), bin, res.Binary, nil) {
			t.Errorf("%s broke the benign binary", tool.Name())
		}
	}
}

// TestBaselinesFailOnTraps: on the trap-rich generated corpus at O2+,
// the baselines must exhibit failures (either refusing to rewrite or
// producing behaviourally wrong binaries) on a meaningful fraction of
// programs, while remaining correct on some too.
func TestBaselinesFailOnTraps(t *testing.T) {
	ccfg := cc.Config{Compiler: cc.GCC11, Linker: cc.LD, Opt: cc.O2, CET: true, EhFrame: true}
	tools := []baseline.Rewriter{ddisasm.New(), egalito.New()}
	fails := map[string]int{}
	oks := map[string]int{}
	const n = 8
	for seed := int64(500); seed < 500+n; seed++ {
		p := prog.Generate("trap", seed, prog.Shape{
			Funcs: 4, Switches: 2, Globals: 5, MainLoop: 10, Stmts: 6, NumInputs: 2,
		})
		bin, err := cc.Compile(p.Module, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, tool := range tools {
			res, err := tool.Rewrite(bin)
			if err != nil {
				fails[tool.Name()]++
				continue
			}
			good := true
			for _, in := range p.Inputs {
				if !runPair(t, tool.Name(), bin, res.Binary, in) {
					good = false
					break
				}
			}
			if good {
				oks[tool.Name()]++
			} else {
				fails[tool.Name()]++
			}
		}
	}
	for _, tool := range tools {
		t.Logf("%s: %d ok, %d failed of %d", tool.Name(), oks[tool.Name()], fails[tool.Name()], n)
		if fails[tool.Name()] == 0 {
			t.Errorf("%s never failed on the trap corpus at O2 — baselines must show their documented unsoundness", tool.Name())
		}
	}
}

func TestEgalitoRequiresEhFrame(t *testing.T) {
	ccfg := cc.DefaultConfig()
	ccfg.EhFrame = false
	bin, err := cc.Compile(benign(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = egalito.New().Rewrite(bin)
	if err == nil || !strings.Contains(err.Error(), "unwind") {
		t.Errorf("egalito accepted a binary without .eh_frame: %v", err)
	}
}

func TestToolNames(t *testing.T) {
	if ddisasm.New().Name() != "ddisasm" || egalito.New().Name() != "egalito" {
		t.Error("tool names wrong")
	}
}
