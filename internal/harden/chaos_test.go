package harden

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestChaosFaultDelivers pins the transport-failpoint contract: the
// injected error is an *InjectedError wrapping a *ChaosError carrying
// the mode and duration, keyed per worker.
func TestChaosFaultDelivers(t *testing.T) {
	plan := NewPlan(ChaosFault(FPFleetForward, "w1", ChaosDelay, 25*time.Millisecond, 0, 0))
	disarm := plan.Arm()
	defer disarm()

	if err := Inject(FPFleetForward + ".w0"); err != nil {
		t.Fatalf("unafflicted worker fired: %v", err)
	}
	err := Inject(FPFleetForward + ".w1")
	if err == nil {
		t.Fatal("armed transport failpoint did not fire")
	}
	if !IsInjected(err) {
		t.Fatalf("chaos fault not recognized as injected: %v", err)
	}
	var ce *ChaosError
	if !errors.As(err, &ce) {
		t.Fatalf("no ChaosError in chain: %v", err)
	}
	if ce.Mode != ChaosDelay || ce.Dur != 25*time.Millisecond {
		t.Fatalf("payload = %+v", ce)
	}
	if !strings.Contains(err.Error(), "chaos delay") {
		t.Fatalf("error text %q does not name the mode", err)
	}
}

// TestChaosSeparateFromStageMatrix: transport points must not leak into
// the stage-failpoint registry — the matrix test over Failpoints
// requires every entry to surface as a StageError, which a transport
// fault never does.
func TestChaosSeparateFromStageMatrix(t *testing.T) {
	for pt := range Failpoints {
		if strings.HasPrefix(pt, "fleet.") {
			t.Fatalf("transport point %q registered in the stage matrix", pt)
		}
	}
}

// TestSeededChaosPlanDeterministic: same seed, same schedule; and no
// schedule ever afflicts the whole fleet.
func TestSeededChaosPlanDeterministic(t *testing.T) {
	workers := []string{"w0", "w1", "w2"}
	for seed := int64(0); seed < 20; seed++ {
		a := SeededChaosPlan(seed, workers, 2, 10*time.Millisecond)
		b := SeededChaosPlan(seed, workers, 2, 10*time.Millisecond)
		pa, pb := a.Points(), b.Points()
		if len(pa) == 0 {
			t.Fatalf("seed %d: empty plan", seed)
		}
		if len(pa) != len(pb) {
			t.Fatalf("seed %d: nondeterministic plan size", seed)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("seed %d: plans differ: %v vs %v", seed, pa, pb)
			}
		}
		if len(pa) > 2 {
			t.Fatalf("seed %d: %d victims > maxVictims 2", seed, len(pa))
		}
	}
}

// TestSeededChaosPlanBounded: every seeded fault has Times >= 1, so a
// chaos round always clears, and flap faults land on the probe point.
func TestSeededChaosPlanBounded(t *testing.T) {
	workers := []string{"w0", "w1", "w2", "w3"}
	for seed := int64(0); seed < 50; seed++ {
		p := SeededChaosPlan(seed, workers, 3, time.Millisecond)
		for _, pt := range p.Points() {
			st := p.faults[pt]
			if st.times < 1 || st.times > 3 {
				t.Fatalf("seed %d point %s: times %d out of [1,3]", seed, pt, st.times)
			}
			var ce *ChaosError
			if !errors.As(st.err, &ce) {
				t.Fatalf("seed %d point %s: no chaos payload", seed, pt)
			}
			wantPrefix := FPFleetForward
			if ce.Mode == ChaosFlap {
				wantPrefix = FPFleetProbe
			}
			if !strings.HasPrefix(pt, wantPrefix+".") {
				t.Fatalf("seed %d: mode %s armed at %s", seed, ce.Mode, pt)
			}
		}
	}
}
