// Package emu executes x86-64 ELF binaries produced by this repository:
// it is the stand-in for the paper's native test-suite runs (§4.1.2). The
// machine enforces the properties a symbolization error would violate —
// page permissions (W^X), CET indirect-branch tracking (endbr64/notrack),
// and a shadow stack — and counts retired instructions, which the
// evaluation uses as its runtime-overhead metric (§4.3).
package emu

import (
	"fmt"
	"sort"
)

// PageSize is the memory granularity for permissions.
const PageSize = 0x1000

// Permission bits.
const (
	PermR uint8 = 1 << iota
	PermW
	PermX
)

type page struct {
	data [PageSize]byte
	perm uint8
}

// Memory is a sparse paged address space.
type Memory struct {
	pages map[uint64]*page

	// AutoRW ranges are mapped read-write on first touch (the sanitizer
	// shadow region).
	autoRW []Range
}

// Range is a half-open address interval.
type Range struct {
	Start, End uint64
}

// Contains reports whether addr lies in the range.
func (r Range) Contains(addr uint64) bool { return addr >= r.Start && addr < r.End }

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// Map creates pages covering [addr, addr+size) with the given permissions.
// Existing pages in the range have their permissions replaced.
func (m *Memory) Map(addr, size uint64, perm uint8) {
	if size == 0 {
		return
	}
	first := addr &^ (PageSize - 1)
	last := (addr + size - 1) &^ (PageSize - 1)
	for pa := first; ; pa += PageSize {
		p, ok := m.pages[pa]
		if !ok {
			p = &page{}
			m.pages[pa] = p
		}
		p.perm = perm
		if pa == last {
			break
		}
	}
}

// Protect changes permissions of existing pages covering the range.
func (m *Memory) Protect(addr, size uint64, perm uint8) {
	if size == 0 {
		return
	}
	first := addr &^ (PageSize - 1)
	last := (addr + size - 1) &^ (PageSize - 1)
	for pa := first; ; pa += PageSize {
		if p, ok := m.pages[pa]; ok {
			p.perm = perm
		}
		if pa == last {
			break
		}
	}
}

// AddAutoRW registers a range that is mapped read-write on demand.
func (m *Memory) AddAutoRW(r Range) { m.autoRW = append(m.autoRW, r) }

// Fault is a memory access violation.
type Fault struct {
	Addr uint64
	Kind string // "read", "write", "exec"
}

func (f *Fault) Error() string {
	return fmt.Sprintf("emu: %s fault at %#x", f.Kind, f.Addr)
}

func (m *Memory) pageFor(addr uint64, need uint8, kind string) (*page, error) {
	pa := addr &^ (PageSize - 1)
	p, ok := m.pages[pa]
	if !ok {
		for _, r := range m.autoRW {
			if r.Contains(addr) {
				p = &page{perm: PermR | PermW}
				m.pages[pa] = p
				ok = true
				break
			}
		}
	}
	if !ok || p.perm&need != need {
		return nil, &Fault{Addr: addr, Kind: kind}
	}
	return p, nil
}

// Read copies size bytes at addr, checking read permission.
func (m *Memory) Read(addr uint64, buf []byte) error {
	return m.access(addr, buf, PermR, "read", false)
}

// Write stores the bytes at addr, checking write permission.
func (m *Memory) Write(addr uint64, buf []byte) error {
	return m.access(addr, buf, PermW, "write", true)
}

// Fetch copies size bytes at addr, checking execute permission.
func (m *Memory) Fetch(addr uint64, buf []byte) error {
	return m.access(addr, buf, PermX, "exec", false)
}

// FetchSpan copies up to len(buf) executable bytes starting at addr in
// one ranged walk (at most two pages for an instruction fetch), stopping
// at the first unmapped or non-executable page. It returns the number of
// bytes copied and never allocates — the instruction-fetch hot path
// calls it instead of issuing byte-at-a-time Fetches.
func (m *Memory) FetchSpan(addr uint64, buf []byte) int {
	done := 0
	for done < len(buf) {
		p := m.execPage(addr + uint64(done))
		if p == nil {
			break
		}
		off := int((addr + uint64(done)) & (PageSize - 1))
		n := copyLen(len(buf)-done, PageSize-off)
		copy(buf[done:done+n], p.data[off:off+n])
		done += n
	}
	return done
}

// execPage returns the executable page containing addr, or nil. AutoRW
// ranges are never executable, so no on-demand mapping happens here.
func (m *Memory) execPage(addr uint64) *page {
	p, ok := m.pages[addr&^(PageSize-1)]
	if !ok || p.perm&PermX == 0 {
		return nil
	}
	return p
}

// PageData returns the backing bytes of the page containing addr when
// it is mapped with the needed permission, or nil. AutoRW ranges map
// on demand, exactly as a faulting access would. The tiered engine's
// data TLB caches the returned slice; it never allocates on the miss
// path, so callers can probe freely and fall back to Read/Write for
// the canonical Fault error.
func (m *Memory) PageData(addr uint64, need uint8) []byte {
	pa := addr &^ (PageSize - 1)
	p, ok := m.pages[pa]
	if !ok {
		for _, r := range m.autoRW {
			if r.Contains(addr) {
				p = &page{perm: PermR | PermW}
				m.pages[pa] = p
				ok = true
				break
			}
		}
	}
	if !ok || p.perm&need != need {
		return nil
	}
	return p.data[:]
}

func (m *Memory) access(addr uint64, buf []byte, need uint8, kind string, store bool) error {
	for done := 0; done < len(buf); {
		p, err := m.pageFor(addr+uint64(done), need, kind)
		if err != nil {
			return err
		}
		off := int((addr + uint64(done)) & (PageSize - 1))
		n := copyLen(len(buf)-done, PageSize-off)
		if store {
			copy(p.data[off:off+n], buf[done:done+n])
		} else {
			copy(buf[done:done+n], p.data[off:off+n])
		}
		done += n
	}
	return nil
}

func copyLen(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ReadU64 loads a little-endian value of the given width (1, 2, 4, or 8
// bytes) without sign extension.
func (m *Memory) ReadU64(addr uint64, width int) (uint64, error) {
	var buf [8]byte
	if err := m.Read(addr, buf[:width]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < width; i++ {
		v |= uint64(buf[i]) << (8 * i)
	}
	return v, nil
}

// WriteU64 stores a little-endian value of the given width.
func (m *Memory) WriteU64(addr uint64, v uint64, width int) error {
	var buf [8]byte
	for i := 0; i < width; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	return m.Write(addr, buf[:width])
}

// MappedRanges returns the mapped page ranges, coalesced, for debugging.
func (m *Memory) MappedRanges() []Range {
	addrs := make([]uint64, 0, len(m.pages))
	for pa := range m.pages {
		addrs = append(addrs, pa)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var out []Range
	for _, pa := range addrs {
		if n := len(out); n > 0 && out[n-1].End == pa {
			out[n-1].End = pa + PageSize
			continue
		}
		out = append(out, Range{Start: pa, End: pa + PageSize})
	}
	return out
}
