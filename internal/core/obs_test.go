package core

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/mini"
	"repro/internal/obs"
)

// figure4Stages is the pipeline stage set from the paper's Figure 4, in
// execution order; Rewrite must emit exactly one span per stage.
var figure4Stages = []string{"cfg", "serialize", "repair", "audit", "symbolize", "instrument", "emit"}

func TestRewriteTraceShape(t *testing.T) {
	bin, err := cc.Compile(trapModule(), cc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewWithClock(&obs.FakeClock{Step: 1})
	res, err := Rewrite(bin, Options{Obs: col})
	if err != nil {
		t.Fatal(err)
	}

	root := res.Trace
	if root == nil {
		t.Fatal("Result.Trace is nil with a collector attached")
	}
	if root.Name != "rewrite" {
		t.Fatalf("root span = %q, want rewrite", root.Name)
	}
	if len(root.Children) != len(figure4Stages) {
		t.Fatalf("root has %d stage spans, want %d: %v", len(root.Children), len(figure4Stages), spanNames(root.Children))
	}
	for i, want := range figure4Stages {
		if root.Children[i].Name != want {
			t.Errorf("stage %d = %q, want %q", i, root.Children[i].Name, want)
		}
	}

	// The CFG builder must report nested sub-spans: entry harvesting and
	// at least one disassembly round and one table-slicing round (the
	// trap module has jump tables).
	cfgSpan := root.Children[0]
	names := spanNames(cfgSpan.Children)
	for _, want := range []string{"harvest", "disasm", "tables"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("cfg span missing %q sub-span (got %v)", want, names)
		}
	}

	// Every span must be closed and contained within its parent.
	var walk func(s *obs.Span)
	var walked int
	walk = func(s *obs.Span) {
		walked++
		if s.Stop < s.Start {
			t.Errorf("span %q never closed (stop %d < start %d)", s.Name, s.Stop, s.Start)
		}
		for _, c := range s.Children {
			if c.Start < s.Start || c.Stop > s.Stop {
				t.Errorf("span %q [%d,%d] escapes parent %q [%d,%d]", c.Name, c.Start, c.Stop, s.Name, s.Start, s.Stop)
			}
			walk(c)
		}
	}
	walk(root)
	if walked < len(figure4Stages)+2 {
		t.Errorf("only %d spans recorded", walked)
	}

	// The stats feed must have populated the registry.
	snap := col.Metrics().Snapshot()
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["suri.rewrites"] != 1 {
		t.Errorf("suri.rewrites = %d, want 1", counters["suri.rewrites"])
	}
	if counters["suri.blocks"] != int64(res.Stats.Blocks) {
		t.Errorf("suri.blocks = %d, stats say %d", counters["suri.blocks"], res.Stats.Blocks)
	}
	if counters["suri.tables"] != int64(res.Stats.Tables) {
		t.Errorf("suri.tables = %d, stats say %d", counters["suri.tables"], res.Stats.Tables)
	}
	if len(snap.Histograms) == 0 {
		t.Error("no histograms recorded (expected asm.relax_rounds)")
	}
}

func spanNames(spans []*obs.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// TestRewriteUntracedHasNoTrace: the nil-collector path must not invent
// a trace.
func TestRewriteUntracedHasNoTrace(t *testing.T) {
	bin, err := cc.Compile(&mini.Module{
		Name: "plain",
		Funcs: []*mini.Func{{
			Name: "main",
			Body: []mini.Stmt{mini.Return{E: mini.Const(0)}},
		}},
	}, cc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Rewrite(bin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("Result.Trace set without a collector")
	}
}

// TestRenderSortedSets: .set pins must render sorted by name regardless
// of map insertion/iteration order.
func TestRenderSortedSets(t *testing.T) {
	sets := map[string]uint64{
		"zeta":  0x30,
		"alpha": 0x10,
		"mid":   0x20,
	}
	out := Render(nil, sets)
	ia := strings.Index(out, "alpha")
	im := strings.Index(out, "mid")
	iz := strings.Index(out, "zeta")
	if ia < 0 || im < 0 || iz < 0 {
		t.Fatalf("render missing set pins:\n%s", out)
	}
	if !(ia < im && im < iz) {
		t.Errorf("set pins not sorted by name (alpha@%d mid@%d zeta@%d):\n%s", ia, im, iz, out)
	}
	for i := 0; i < 8; i++ {
		if Render(nil, sets) != out {
			t.Fatal("Render nondeterministic across calls")
		}
	}
}
