package farm

import (
	"context"
	"errors"
	"sync"
)

// Group coalesces concurrent executions of the same content-addressed
// rewrite into one: the first caller for a key becomes the leader and
// runs fn; everyone else arriving before the leader finishes blocks and
// receives the leader's result. Rewrites are deterministic functions of
// their content address, so sharing one execution's artifact across all
// waiters is semantically free — it converts a thundering herd of
// identical requests into a single pipeline run.
//
// The zero Group is ready to use. It is safe for concurrent use.
type Group[V any] struct {
	mu    sync.Mutex
	calls map[Key]*call[V]
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do runs fn once per concurrent key. The leader (second result true)
// executes fn under its own context; waiters block until the leader
// finishes or their own ctx is done, whichever comes first. A waiter
// whose leader failed with the *leader's* cancellation — while the
// waiter's own ctx is still live — re-enters and becomes (or joins) a
// new leader, so one impatient client cannot poison the herd.
func (g *Group[V]) Do(ctx context.Context, key Key, fn func() (V, error)) (V, bool, error) {
	for {
		g.mu.Lock()
		if g.calls == nil {
			g.calls = make(map[Key]*call[V])
		}
		if c, ok := g.calls[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				var zero V
				return zero, false, ctx.Err()
			}
			if c.err != nil && isCancellation(c.err) && ctx.Err() == nil {
				continue // the leader was canceled, not us: retry
			}
			return c.val, false, c.err
		}
		c := &call[V]{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()

		c.val, c.err = fn()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
		return c.val, true, c.err
	}
}

// isCancellation reports whether err is a context cancellation or
// deadline error — the leader-specific failures a live waiter should
// not inherit.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
