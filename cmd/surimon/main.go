// Command surimon is a live text monitor for a running surid: it polls
// GET /metrics (Prometheus exposition) and GET /debug/flight, and
// renders request rates, error deltas, latency quantiles, per-stage
// medians, and the newest flight-recorder events as deterministic text.
//
// Usage:
//
//	surimon [-addr http://localhost:8649] [-interval 2s] [-events 8] [-once]
//
// -once scrapes and renders a single frame and exits 0 — the scriptable
// mode (each frame is a pure function of the scraped payloads, so
// output is stable for a quiesced server). Without it, surimon renders
// a frame every -interval, each annotated with deltas against the
// previous frame, until interrupted. A scrape failure is reported on
// stderr and exits 1 (-once) or retries next tick.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	addr := flag.String("addr", "http://localhost:8649", "surid base URL")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	events := flag.Int("events", 8, "flight-recorder events per frame (0 = none)")
	once := flag.Bool("once", false, "render a single frame and exit")
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	var prev *Sample
	for {
		cur, flight, err := scrape(client, *addr, *events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "surimon:", err)
			if *once {
				os.Exit(1)
			}
		} else {
			os.Stdout.WriteString(Render(prev, cur, flight))
			prev = cur
		}
		if *once {
			return
		}
		fmt.Println()
		time.Sleep(*interval)
	}
}

// scrape fetches one /metrics payload and, when n > 0, the newest n
// flight events. A missing flight recorder (404) is not an error —
// the frame simply omits the flight section.
func scrape(client *http.Client, addr string, n int) (*Sample, *FlightDump, error) {
	body, status, err := get(client, addr+"/metrics")
	if err != nil {
		return nil, nil, err
	}
	if status != http.StatusOK {
		return nil, nil, fmt.Errorf("GET /metrics: status %d", status)
	}
	sample, err := ParseProm(string(body))
	if err != nil {
		return nil, nil, fmt.Errorf("parse /metrics: %w", err)
	}
	if n <= 0 {
		return sample, nil, nil
	}
	body, status, err = get(client, fmt.Sprintf("%s/debug/flight?n=%d", addr, n))
	if err != nil {
		return nil, nil, err
	}
	if status == http.StatusNotFound {
		return sample, nil, nil
	}
	if status != http.StatusOK {
		return nil, nil, fmt.Errorf("GET /debug/flight: status %d", status)
	}
	var flight FlightDump
	if err := json.Unmarshal(body, &flight); err != nil {
		return nil, nil, fmt.Errorf("parse /debug/flight: %w", err)
	}
	return sample, &flight, nil
}

func get(client *http.Client, url string) ([]byte, int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return body, resp.StatusCode, nil
}
