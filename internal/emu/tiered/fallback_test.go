package tiered_test

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/cc"
	"repro/internal/elfx"
	"repro/internal/emu"
	"repro/internal/prog"
	"repro/internal/x86"

	_ "repro/internal/emu/tiered"
)

// These tests pin the engine's fallback edges: the places where a
// translated superblock must hand control back to the interpreter (or
// fault inside the block) without any observable difference.

func asm(t *testing.T, insts []x86.Inst) []byte {
	t.Helper()
	var code []byte
	for _, in := range insts {
		b, err := x86.Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		code = append(code, b...)
	}
	return code
}

// TestCETViolationMidSuperblock drives a shadow-stack mismatch inside
// a translated block: a function runs clean once (warming the block to
// the translation threshold), then corrupts its return address on the
// second call, so the violating RET executes as a micro-op. Error
// text, step count, and machine state must match the interpreter.
func TestCETViolationMidSuperblock(t *testing.T) {
	// main: rbx counts calls; fn corrupts [rsp] when rbx==1.
	fn := []x86.Inst{
		{Op: x86.CMP, W: 8, Dst: x86.RBX, Src: x86.Imm(1)},
		{Op: x86.JCC, Cond: x86.CondNE, Src: x86.Rel(0)},        // patched: skip the two corrupting movs
		{Op: x86.MOV, W: 8, Dst: x86.RAX, Src: x86.Imm(0x1000)}, // 7 bytes
		{Op: x86.MOV, W: 8, Dst: x86.Mem{Base: x86.RSP, Index: x86.NoReg}, Src: x86.RAX},
		{Op: x86.RET},
	}
	// Compute the jcc skip distance from real encodings.
	enc := func(in x86.Inst) int {
		b, err := x86.Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		return len(b)
	}
	skip := enc(fn[2]) + enc(fn[3])
	fn[1].Src = x86.Rel(int32(skip))

	fnCode := asm(t, fn)

	main := []x86.Inst{
		{Op: x86.MOV, W: 8, Dst: x86.RBX, Src: x86.Imm(0)},
		{Op: x86.CALL, Src: x86.Rel(0)}, // patched below
		{Op: x86.ADD, W: 8, Dst: x86.RBX, Src: x86.Imm(1)},
		{Op: x86.CMP, W: 8, Dst: x86.RBX, Src: x86.Imm(3)},
		{Op: x86.JCC, Cond: x86.CondL, Src: x86.Rel(0)}, // patched below
		{Op: x86.MOV, W: 8, Dst: x86.RDI, Src: x86.Imm(0)},
		{Op: x86.MOV, W: 8, Dst: x86.RAX, Src: x86.Imm(60)},
		{Op: x86.SYSCALL},
	}
	sizes := make([]int, len(main))
	total := 0
	for i, in := range main {
		sizes[i] = enc(in)
		total += sizes[i]
	}
	// call target: fn starts right after main.
	afterCall := sizes[0] + sizes[1]
	main[1].Src = x86.Rel(int32(total - afterCall))
	// jcc back to the call.
	afterJcc := afterCall + sizes[2] + sizes[3] + sizes[4]
	main[4].Src = x86.Rel(int32(sizes[0] - afterJcc))

	code := append(asm(t, main), fnCode...)

	run := func(engine emu.EngineKind) (machineState, *emu.TierStats) {
		m := buildRaw(t, code, engine)
		m.EnforceCET = true
		return snapshot(m, m.Run()), m.TierStats()
	}
	si, _ := run(emu.EngineInterpreter)
	st, stats := run(emu.EngineTiered)
	if si != st {
		t.Errorf("diverged:\n  interp: %+v\n  tiered: %+v", si, st)
	}
	if !strings.Contains(st.err, "shadow stack mismatch") {
		t.Errorf("expected shadow stack mismatch, got %q", st.err)
	}
	if stats == nil {
		t.Fatal("no tier stats")
	}
	if stats.ExitError == 0 {
		t.Errorf("violation did not surface from a translated block: %+v", *stats)
	}
}

// TestBudgetSweepInsideSuperblock runs a looping program under every
// possible step budget. For most budgets the limit lands mid-block —
// the engine must decline the block (GuardBudget) and single-step to
// the exact interpreter error at the exact instruction.
func TestBudgetSweepInsideSuperblock(t *testing.T) {
	insts := []x86.Inst{
		{Op: x86.MOV, W: 8, Dst: x86.RCX, Src: x86.Imm(0)},
		{Op: x86.ADD, W: 8, Dst: x86.RCX, Src: x86.Imm(1)}, // loop:
		{Op: x86.ADD, W: 8, Dst: x86.RAX, Src: x86.RCX},
		{Op: x86.XOR, W: 8, Dst: x86.RDX, Src: x86.RCX},
		{Op: x86.CMP, W: 8, Dst: x86.RCX, Src: x86.Imm(8)},
		{Op: x86.JCC, Cond: x86.CondL, Src: x86.Rel(0)}, // patched below
		{Op: x86.MOV, W: 8, Dst: x86.RDI, Src: x86.RAX},
		{Op: x86.MOV, W: 8, Dst: x86.RAX, Src: x86.Imm(60)},
		{Op: x86.SYSCALL},
	}
	// The back-branch skips from the end of the jcc to the loop head.
	loopLen := 0
	for _, in := range insts[1:6] {
		b, err := x86.Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		loopLen += len(b)
	}
	insts[5].Src = x86.Rel(int32(-loopLen))
	code := asm(t, insts)
	seed := make(map[uint64]uint64)
	for a := uint64(0x1000); a < 0x1100; a++ {
		seed[a] = 8
	}

	// Full run length first.
	mfull := buildRaw(t, code, emu.EngineInterpreter)
	if err := mfull.Run(); err != nil {
		t.Fatal(err)
	}
	total := mfull.Steps

	sawGuard := false
	for budget := uint64(1); budget <= total+1; budget++ {
		mi := buildRaw(t, code, emu.EngineInterpreter)
		mi.MaxSteps = budget
		si := snapshot(mi, mi.Run())

		mt := buildRaw(t, code, emu.EngineTiered)
		mt.MaxSteps = budget
		mt.SetHeatSeed(seed)
		st := snapshot(mt, mt.Run())

		if si != st {
			t.Errorf("budget %d diverged:\n  interp: %+v\n  tiered: %+v", budget, si, st)
		}
		if s := mt.TierStats(); s != nil && s.GuardBudget > 0 {
			sawGuard = true
		}
	}
	if !sawGuard {
		t.Error("no budget ever tripped the block-entry guard — the sweep tested nothing")
	}
}

// corpusBin compiles one deterministic benchmark program.
func corpusBin(t *testing.T, idx int) []byte {
	t.Helper()
	suites := prog.Suites(0.01)
	var progs []*prog.Program
	for _, s := range suites {
		progs = append(progs, s.Programs...)
	}
	p := progs[idx%len(progs)]
	bin, err := cc.Compile(p.Module, cc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

type runOut struct {
	exit   int
	steps  uint64
	stdout string
	err    string
}

func runMachine(t *testing.T, m *emu.Machine) runOut {
	t.Helper()
	err := m.Run()
	_, code := m.Exited()
	return runOut{exit: code, steps: m.Steps, stdout: string(m.Stdout), err: errStr(err)}
}

// TestPlaneInvalidationBetweenRuns reloads a machine with a different
// image: the loader must invalidate the decode planes, the engine must
// drop its translations (Invalidations counter), and the run must be
// correct for the new image. An explicit InvalidatePlanes between runs
// of the same image must also retranslate, not misbehave.
func TestPlaneInvalidationBetweenRuns(t *testing.T) {
	binA, binB := corpusBin(t, 0), corpusBin(t, 1)
	fA, err := elfx.Read(binA)
	if err != nil {
		t.Fatal(err)
	}
	fB, err := elfx.Read(binB)
	if err != nil {
		t.Fatal(err)
	}
	opts := emu.Options{Engine: emu.EngineTiered}

	// Ground truth, fresh interpreter machines.
	wantA, errA := emu.Run(binA, emu.Options{Engine: emu.EngineInterpreter})
	wantB, errB := emu.Run(binB, emu.Options{Engine: emu.EngineInterpreter})
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}

	m, err := emu.LoadFile(fA, opts)
	if err != nil {
		t.Fatal(err)
	}
	out := runMachine(t, m)
	if out.err != "" || out.exit != wantA.Exit || out.stdout != string(wantA.Stdout) || out.steps != wantA.Steps {
		t.Fatalf("run A: %+v, want exit %d", out, wantA.Exit)
	}
	s := m.TierStats()
	if s == nil || s.Translations == 0 {
		t.Fatal("first run produced no translations")
	}

	// Different image: the loader must detect it and invalidate.
	if err := emu.Reload(m, fB, opts); err != nil {
		t.Fatal(err)
	}
	out = runMachine(t, m)
	if out.err != "" || out.exit != wantB.Exit || out.stdout != string(wantB.Stdout) || out.steps != wantB.Steps {
		t.Fatalf("run B after image swap: %+v, want exit %d", out, wantB.Exit)
	}
	s = m.TierStats()
	if s.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", s.Invalidations)
	}

	// Explicit invalidation between runs of the same image.
	m.InvalidatePlanes()
	if err := emu.Reload(m, fB, opts); err != nil {
		t.Fatal(err)
	}
	out = runMachine(t, m)
	if out.err != "" || out.exit != wantB.Exit || out.steps != wantB.Steps {
		t.Fatalf("run B after explicit invalidation: %+v", out)
	}
	if s := m.TierStats(); s.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", s.Invalidations)
	}
}

// TestResetReloadAcrossEngines alternates engines across Reload of the
// same image on one machine. Results must be identical every time, and
// the translation cache must survive: the third run reuses the first
// run's translations instead of making new ones.
func TestResetReloadAcrossEngines(t *testing.T) {
	bin := corpusBin(t, 0)
	f, err := elfx.Read(bin)
	if err != nil {
		t.Fatal(err)
	}

	m, err := emu.LoadFile(f, emu.Options{Engine: emu.EngineTiered})
	if err != nil {
		t.Fatal(err)
	}
	out1 := runMachine(t, m)
	trans1 := m.TierStats().Translations

	if err := emu.Reload(m, f, emu.Options{Engine: emu.EngineInterpreter}); err != nil {
		t.Fatal(err)
	}
	out2 := runMachine(t, m)

	if err := emu.Reload(m, f, emu.Options{Engine: emu.EngineTiered}); err != nil {
		t.Fatal(err)
	}
	out3 := runMachine(t, m)
	trans3 := m.TierStats().Translations
	if trans3 < trans1 {
		t.Errorf("translations dropped from %d to %d — cache did not survive Reset/Reload", trans1, trans3)
	}

	// By the end of the second tiered run every repeating block has hit
	// the threshold, so a fourth run must reuse the cache wholesale.
	if err := emu.Reload(m, f, emu.Options{Engine: emu.EngineTiered}); err != nil {
		t.Fatal(err)
	}
	out4 := runMachine(t, m)
	s := m.TierStats()
	if out1 != out2 || out2 != out3 || out3 != out4 {
		t.Errorf("runs diverged across engines:\n  tiered:  %+v\n  interp:  %+v\n  tiered2: %+v\n  tiered3: %+v", out1, out2, out3, out4)
	}
	if s.Translations != trans3 {
		t.Errorf("translations grew from %d to %d on a fully warm cache", trans3, s.Translations)
	}
	if s.Invalidations != 0 {
		t.Errorf("same-image reloads invalidated %d times", s.Invalidations)
	}
}

// TestConcurrentSharedPlanesTiered runs the tiered engine on many
// machines sharing one frozen plane set — the validation farm's shape,
// where a warm machine donates its decode work. Run under -race by
// scripts/check.sh: translation state is per-machine, only the frozen
// planes are shared.
func TestConcurrentSharedPlanesTiered(t *testing.T) {
	bin := corpusBin(t, 1)
	f, err := elfx.Read(bin)
	if err != nil {
		t.Fatal(err)
	}
	opts := emu.Options{Engine: emu.EngineTiered}

	warm, err := emu.LoadFile(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := runMachine(t, warm)
	if want.err != "" {
		t.Fatal(want.err)
	}
	donated := warm.DonatePlanes()
	if len(donated) == 0 {
		t.Fatal("nothing donated")
	}

	var wg sync.WaitGroup
	outs := make([]runOut, 8)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := emu.LoadFile(f, opts)
			if err != nil {
				t.Error(err)
				return
			}
			m.AdoptPlanes(donated)
			outs[i] = runMachine(t, m)
			if s := m.TierStats(); s == nil || s.TierSteps == 0 {
				t.Errorf("machine %d never ran translated code", i)
			}
		}(i)
	}
	wg.Wait()
	for i, out := range outs {
		if out != want {
			t.Errorf("machine %d diverged: %+v != %+v", i, out, want)
		}
	}
	// The donor keeps working after donation (its planes froze).
	if err := emu.Reload(warm, f, opts); err != nil {
		t.Fatal(err)
	}
	if again := runMachine(t, warm); again != want {
		t.Errorf("donor diverged after donation: %+v", again)
	}
}
