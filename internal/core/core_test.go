package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/cc"
	"repro/internal/elfx"
	"repro/internal/emu"
	"repro/internal/mini"
	"repro/internal/serialize"
	"repro/internal/x86"
)

func inputBytes(vals []int64) []byte {
	out := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return out
}

// trapModule exercises every hard symbolization pattern: dense masked
// switches (bounds-check-free jump tables), decoy data adjacent to
// tables (Fig. 3), function-pointer tables and direct function refs
// (S1/S6), past-the-end static pointers (S2), composite cross-section
// accesses at O2+ (S7, Figs. 1-2), and recursion.
func trapModule() *mini.Module {
	cases := func(base int64, n int) []mini.SwitchCase {
		cs := make([]mini.SwitchCase, n)
		for i := range cs {
			cs[i] = mini.SwitchCase{Val: int64(i), Body: []mini.Stmt{mini.Print{E: mini.Const(base + int64(i))}}}
		}
		return cs
	}
	return &mini.Module{
		Name: "traps",
		Globals: []*mini.Global{
			{Name: "tbl", FuncTable: []string{"inc", "tri", "neg"}},
			{Name: "decoys", Elem: 4, Count: 6, Init: []int64{-48, -24, -12, -100, 60, 8}, ReadOnly: true},
			{Name: "arr", Elem: 8, Count: 5, Init: []int64{2, 4, 6, 8, 10}},
			{Name: "past", PtrInit: &mini.PtrInit{Target: "arr", ByteOff: 24}},
			{Name: "zeros", Elem: 8, Count: 6},
			{Name: "bytes", Elem: 1, Count: 16, Init: []int64{9, 8, 7}},
		},
		Funcs: []*mini.Func{
			{Name: "inc", NParams: 1, Body: []mini.Stmt{
				mini.Return{E: mini.Bin{Op: mini.Add, L: mini.Var("p0"), R: mini.Const(1)}}}},
			{Name: "tri", NParams: 1, Body: []mini.Stmt{
				mini.Return{E: mini.Bin{Op: mini.Mul, L: mini.Var("p0"), R: mini.Const(3)}}}},
			{Name: "neg", NParams: 1, Body: []mini.Stmt{
				mini.Return{E: mini.Bin{Op: mini.Sub, L: mini.Const(0), R: mini.Var("p0")}}}},
			{Name: "fib", NParams: 1, Body: []mini.Stmt{
				mini.If{Cond: mini.Bin{Op: mini.Lt, L: mini.Var("p0"), R: mini.Const(2)},
					Then: []mini.Stmt{mini.Return{E: mini.Var("p0")}}},
				mini.Return{E: mini.Bin{Op: mini.Add,
					L: mini.Call{Name: "fib", Args: []mini.Expr{mini.Bin{Op: mini.Sub, L: mini.Var("p0"), R: mini.Const(1)}}},
					R: mini.Call{Name: "fib", Args: []mini.Expr{mini.Bin{Op: mini.Sub, L: mini.Var("p0"), R: mini.Const(2)}}}}},
			}},
			{
				Name:   "main",
				Locals: []string{"i", "fp"},
				Body: []mini.Stmt{
					mini.Assign{Name: "i", E: mini.Const(0)},
					mini.While{
						Cond: mini.Bin{Op: mini.Lt, L: mini.Var("i"), R: mini.Const(24)},
						Body: []mini.Stmt{
							mini.Switch{
								E:        mini.Bin{Op: mini.And, L: mini.Var("i"), R: mini.Const(7)},
								Complete: true,
								Cases:    cases(100, 8),
							},
							mini.Switch{
								E:     mini.Bin{Op: mini.Mod, L: mini.Var("i"), R: mini.Const(5)},
								Cases: cases(200, 5),
								Default: []mini.Stmt{
									mini.Print{E: mini.Const(-5)},
								},
							},
							mini.Print{E: mini.LoadG{G: "decoys",
								Idx: mini.Bin{Op: mini.Mod, L: mini.Var("i"), R: mini.Const(6)}}},
							mini.StoreG{G: "zeros",
								Idx: mini.Bin{Op: mini.And, L: mini.Var("i"), R: mini.Const(3)},
								E:   mini.Bin{Op: mini.Mul, L: mini.Var("i"), R: mini.Var("i")}},
							mini.Print{E: mini.LoadG{G: "zeros", Idx: mini.Const(1)}},
							mini.Print{E: mini.LoadG{G: "bytes",
								Idx: mini.Bin{Op: mini.And, L: mini.Var("i"), R: mini.Const(7)}}},
							mini.Print{E: mini.CallPtr{Table: "tbl",
								Idx:  mini.Bin{Op: mini.Mod, L: mini.Var("i"), R: mini.Const(3)},
								Args: []mini.Expr{mini.Var("i")}}},
							mini.Assign{Name: "i", E: mini.Bin{Op: mini.Add, L: mini.Var("i"), R: mini.Const(1)}},
						},
					},
					mini.Print{E: mini.LoadP{P: "past", Idx: mini.Const(-1)}},
					mini.Print{E: mini.LoadP{P: "past", Idx: mini.Const(-3)}},
					mini.Assign{Name: "fp", E: mini.FuncRef{Name: "tri"}},
					mini.Print{E: mini.CallVal{F: mini.Var("fp"), Args: []mini.Expr{mini.Const(7)}}},
					mini.Print{E: mini.Call{Name: "fib", Args: []mini.Expr{mini.Const(12)}}},
					mini.Print{E: mini.ReadInput{}},
					mini.Return{E: mini.Bin{Op: mini.And, L: mini.ReadInput{}, R: mini.Const(0x7f)}},
				},
			},
		},
	}
}

// rewriteAndCompare compiles the module, rewrites it, and requires the
// rewritten binary to reproduce the original's behaviour exactly on the
// given inputs.
func rewriteAndCompare(t *testing.T, m *mini.Module, ccfg cc.Config, opts Options, inputs [][]int64) *Result {
	t.Helper()
	bin, err := cc.Compile(m, ccfg)
	if err != nil {
		t.Fatalf("compile (%s): %v", ccfg, err)
	}
	res, err := Rewrite(bin, opts)
	if err != nil {
		t.Fatalf("rewrite (%s): %v", ccfg, err)
	}
	for _, in := range inputs {
		orig, err := emu.Run(bin, emu.Options{Input: inputBytes(in)})
		if err != nil {
			t.Fatalf("original run (%s): %v", ccfg, err)
		}
		got, err := emu.Run(res.Binary, emu.Options{Input: inputBytes(in)})
		if err != nil {
			t.Fatalf("rewritten run (%s): %v\noriginal stdout: %q\nrewritten stdout so far: %q",
				ccfg, err, orig.Stdout, got.Stdout)
		}
		if !bytes.Equal(got.Stdout, orig.Stdout) || got.Exit != orig.Exit {
			t.Fatalf("behaviour diverged (%s):\noriginal:  %q exit %d\nrewritten: %q exit %d",
				ccfg, orig.Stdout, orig.Exit, got.Stdout, got.Exit)
		}
	}
	return res
}

func TestRewriteHello(t *testing.T) {
	m := &mini.Module{
		Name: "hello",
		Funcs: []*mini.Func{{
			Name: "main",
			Body: []mini.Stmt{mini.Print{E: mini.Const(42)}, mini.Return{E: mini.Const(7)}},
		}},
	}
	res := rewriteAndCompare(t, m, cc.DefaultConfig(), Options{}, [][]int64{nil})
	if res.Stats.CopiedInstructions == 0 {
		t.Error("no instructions copied")
	}
}

func TestRewriteTrapsAllConfigs(t *testing.T) {
	m := trapModule()
	inputs := [][]int64{{11, 3}, {-9, 200}}
	for _, ccfg := range cc.AllConfigs() {
		ccfg := ccfg
		t.Run(ccfg.String(), func(t *testing.T) {
			res := rewriteAndCompare(t, m, ccfg, Options{}, inputs)
			if ccfg.Opt != cc.O0 && res.Stats.Tables == 0 {
				t.Error("expected jump tables at -O1+")
			}
		})
	}
}

func TestRewriteNoEhFrame(t *testing.T) {
	m := trapModule()
	ccfg := cc.DefaultConfig()
	ccfg.EhFrame = false
	rewriteAndCompare(t, m, ccfg, Options{IgnoreEhFrame: true}, [][]int64{{5, 6}})
	// And a build WITH eh_frame rewritten while ignoring it (§4.3.3).
	rewriteAndCompare(t, m, cc.DefaultConfig(), Options{IgnoreEhFrame: true}, [][]int64{{5, 6}})
}

func TestRewriteLayoutPreservation(t *testing.T) {
	m := trapModule()
	bin, err := cc.Compile(m, cc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Rewrite(bin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := elfx.Read(bin)
	got, err := elfx.Read(res.Binary)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range orig.Sections {
		if s.Flags&elfx.SHFAlloc == 0 {
			continue
		}
		ns := got.Section(s.Name)
		if ns == nil {
			t.Errorf("section %s missing from rewritten binary", s.Name)
			continue
		}
		if ns.Addr != s.Addr || ns.Size != s.Size {
			t.Errorf("section %s moved: %#x+%#x -> %#x+%#x", s.Name, s.Addr, s.Size, ns.Addr, ns.Size)
		}
		if s.Flags&elfx.SHFExecinstr != 0 && ns.Flags&elfx.SHFExecinstr != 0 {
			t.Errorf("original code section %s still executable", s.Name)
		}
		// Original code/data bytes are preserved verbatim (except the
		// retargeted relocation entries).
		if s.Type != elfx.SHTNobits && s.Name != ".rela.dyn" && !bytes.Equal(s.Data, ns.Data) {
			t.Errorf("section %s content changed", s.Name)
		}
	}
	if got.Entry == orig.Entry {
		t.Error("entry point not moved to copied code")
	}
	if got.Section(".suri.text") == nil || got.Section(".suri.rodata") == nil {
		t.Error("new sections missing")
	}
	if res.Stats.AdjustedRelas == 0 {
		t.Error("no relocations adjusted (function table should need it)")
	}
}

func TestRewrittenStillCET(t *testing.T) {
	// The rewritten binary must still satisfy IBT+SHSTK under
	// enforcement (invariant 6) — emu.Run enforces when the note is set.
	m := trapModule()
	bin, _ := cc.Compile(m, cc.DefaultConfig())
	res, err := Rewrite(bin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := elfx.Read(res.Binary)
	if !f.HasCET() {
		t.Fatal("rewritten binary lost its CET note")
	}
	machine, err := emu.Load(res.Binary, emu.Options{Input: inputBytes([]int64{1, 2})})
	if err != nil {
		t.Fatal(err)
	}
	if !machine.EnforceCET {
		t.Fatal("CET not enforced on rewritten binary")
	}
	if err := machine.Run(); err != nil {
		t.Fatalf("rewritten binary violates CET: %v", err)
	}
}

func TestRewriteBiasIndependence(t *testing.T) {
	m := trapModule()
	bin, _ := cc.Compile(m, cc.DefaultConfig())
	res, err := Rewrite(bin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := inputBytes([]int64{4, 5})
	a, err := emu.Run(res.Binary, emu.Options{Bias: 0x1000_0000, Input: in})
	if err != nil {
		t.Fatal(err)
	}
	b, err := emu.Run(res.Binary, emu.Options{Bias: 0x3456_0000, Input: in})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Stdout, b.Stdout) || a.Exit != b.Exit {
		t.Error("rewritten binary is bias-dependent")
	}
}

func TestRewriteRejectsNonCET(t *testing.T) {
	ccfg := cc.DefaultConfig()
	ccfg.CET = false
	bin, err := cc.Compile(trapModule(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Rewrite(bin, Options{}); !errors.Is(err, ErrNotCETPIE) {
		t.Errorf("non-CET binary accepted: %v", err)
	}
	if _, err := Rewrite(bin, Options{AllowNonCET: true}); err != nil {
		t.Errorf("AllowNonCET rewrite failed: %v", err)
	}
}

func TestRewriteWithNopInstrumentation(t *testing.T) {
	// §4.3: no-op instrumentation — insert a NOP before every copied
	// instruction; behaviour must be identical, instruction count higher.
	m := trapModule()
	// Never insert between a label and its endbr64: indirect branches
	// land on the label and IBT requires endbr64 to execute first.
	instrument := func(entries []serialize.Entry) ([]serialize.Entry, error) {
		var out []serialize.Entry
		for _, e := range entries {
			if !e.Synth && e.Inst.Op != x86.ENDBR64 {
				out = append(out, serialize.Entry{
					Labels: e.Labels,
					Inst:   x86.Inst{Op: x86.NOP},
					Synth:  true,
				})
				e.Labels = nil
			}
			out = append(out, e)
		}
		return out, nil
	}
	rewriteAndCompare(t, m, cc.DefaultConfig(), Options{Instrument: instrument}, [][]int64{{1, 2}})
}

func TestRewriteTwice(t *testing.T) {
	// Rewriting the rewritten binary must keep working (idempotent
	// pipeline robustness). The second rewrite sees a binary whose
	// original sections are data-only and whose new text is the only
	// executable section.
	m := trapModule()
	bin, _ := cc.Compile(m, cc.DefaultConfig())
	r1, err := Rewrite(bin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Rewrite(r1.Binary, Options{})
	if err != nil {
		t.Skipf("second rewrite unsupported: %v", err) // acceptable; documented
	}
	in := inputBytes([]int64{2, 3})
	a, err := emu.Run(bin, emu.Options{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	b, err := emu.Run(r2.Binary, emu.Options{Input: in})
	if err != nil {
		t.Fatalf("doubly rewritten binary failed: %v", err)
	}
	if !bytes.Equal(a.Stdout, b.Stdout) {
		t.Error("double rewrite diverged")
	}
}

func TestStatsPlausible(t *testing.T) {
	m := trapModule()
	ccfg := cc.DefaultConfig()
	ccfg.Opt = cc.O3
	bin, _ := cc.Compile(m, ccfg)
	res, err := Rewrite(bin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Blocks == 0 || st.Entries == 0 || st.Instructions == 0 {
		t.Errorf("graph stats empty: %+v", st)
	}
	if st.CodePointers == 0 {
		t.Error("no code pointers classified (FuncRef should produce one)")
	}
	if st.PinnedPointers == 0 {
		t.Error("no pinned pointers (data refs should be pinned)")
	}
	if st.Tables == 0 || st.TableEntries == 0 {
		t.Errorf("no jump tables symbolized: %+v", st)
	}
	if st.AddedInstructions == 0 {
		t.Error("no added instructions recorded")
	}
}

// TestOverApproximationIncludesDecoys: with Figure 3's plausible decoy
// values adjacent to the last jump table, SURI's over-approximation must
// absorb extra entries — and isolation must keep the program correct.
func TestOverApproximationIncludesDecoys(t *testing.T) {
	cases := make([]mini.SwitchCase, 8)
	for i := range cases {
		cases[i] = mini.SwitchCase{Val: int64(i), Body: []mini.Stmt{mini.Print{E: mini.Const(int64(i))}}}
	}
	m := &mini.Module{
		Name: "fig3",
		Globals: []*mini.Global{
			// Plausible-looking offsets right after the table: spread to
			// land inside the dispatch function wherever the linker puts
			// the sections.
			{Name: "decoys", Elem: 4, Count: 8, ReadOnly: true,
				Init: []int64{-0xf00, -0xef0, -0xee0, -0xed0, -0xec0, -0xeb0, -0xea0, -0xe90}},
		},
		Funcs: []*mini.Func{{
			Name:   "main",
			Locals: []string{"i"},
			Body: []mini.Stmt{
				mini.Assign{Name: "i", E: mini.Const(0)},
				mini.While{Cond: mini.Bin{Op: mini.Lt, L: mini.Var("i"), R: mini.Const(8)},
					Body: []mini.Stmt{
						mini.Switch{E: mini.Bin{Op: mini.And, L: mini.Var("i"), R: mini.Const(7)},
							Complete: true, Cases: cases},
						mini.Print{E: mini.LoadG{G: "decoys",
							Idx: mini.Bin{Op: mini.And, L: mini.Var("i"), R: mini.Const(3)}}},
						mini.Assign{Name: "i", E: mini.Bin{Op: mini.Add, L: mini.Var("i"), R: mini.Const(1)}},
					}},
			},
		}},
	}
	res := rewriteAndCompare(t, m, cc.DefaultConfig(), Options{}, [][]int64{nil})
	if res.Stats.TableEntries <= 8 {
		t.Errorf("over-approximation absorbed no decoys: %d entries for an 8-case table",
			res.Stats.TableEntries)
	}
}
