package ehframe

import (
	"testing"
)

// FuzzEHFrame throws arbitrary bytes at the .eh_frame parser. Parse may
// reject, but it must never panic, and every accepted FuncRange must
// have a non-overflowing pc-range (the exact guarantee the CFG builder
// relies on when it seeds entries from CFI). Seed corpus:
// testdata/fuzz/FuzzEHFrame (regenerate with scripts/gencorpus).
func FuzzEHFrame(f *testing.F) {
	sec := Build(0x4000, []FuncRange{
		{Start: 0x1000, Size: 0x40},
		{Start: 0x1040, Size: 0x123},
	})
	f.Add(uint64(0x4000), sec)
	f.Add(uint64(0), []byte{})
	f.Add(uint64(0), []byte{0, 0, 0, 0})
	f.Add(uint64(0x4000), sec[:len(sec)/2])
	f.Fuzz(func(t *testing.T, secAddr uint64, data []byte) {
		frs, err := Parse(secAddr, data)
		if err != nil {
			return
		}
		for _, fr := range frs {
			if fr.Start+fr.Size < fr.Start {
				t.Fatalf("accepted overflowing pc-range [%#x, +%#x]", fr.Start, fr.Size)
			}
		}
	})
}

// FuzzLEB checks the varint decoders directly: any input either decodes
// (consuming 1..len bytes, never more) or returns ErrTruncated /
// ErrOverflow — never a panic, never a zero-length success.
func FuzzLEB(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xE5, 0x8E, 0x26})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if v, n, err := ReadULEB(data); err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("ReadULEB(%x) = %d, n=%d", data, v, n)
			}
		}
		if v, n, err := ReadSLEB(data); err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("ReadSLEB(%x) = %d, n=%d", data, v, n)
			}
		}
	})
}
