package tiered_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cc"
	"repro/internal/emu"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/prog"
	"repro/internal/x86"

	_ "repro/internal/emu/tiered"
)

// The tiered engine's correctness claim is bit-identity with the
// interpreter: same registers, memory effects, I/O, step counts,
// profile counters, CET events, and error text on every program. These
// tests pin that claim on the full 48-config benchmark corpus and on
// differential random-code runs.

// errStr renders an error for comparison; nil becomes "".
func errStr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// compareResults fails the test wherever a tiered run diverged from
// the interpreted ground truth.
func compareResults(t *testing.T, label string, ir, tr *emu.Result, ierr, terr error) {
	t.Helper()
	if errStr(ierr) != errStr(terr) {
		t.Errorf("%s: error mismatch:\n  interp: %v\n  tiered: %v", label, ierr, terr)
		return
	}
	if ir == nil || tr == nil {
		if (ir == nil) != (tr == nil) {
			t.Errorf("%s: result presence mismatch", label)
		}
		return
	}
	if ir.Exit != tr.Exit {
		t.Errorf("%s: exit %d != %d", label, ir.Exit, tr.Exit)
	}
	if ir.Steps != tr.Steps {
		t.Errorf("%s: steps %d != %d", label, ir.Steps, tr.Steps)
	}
	if !bytes.Equal(ir.Stdout, tr.Stdout) {
		t.Errorf("%s: stdout diverged:\n  interp: %q\n  tiered: %q", label, ir.Stdout, tr.Stdout)
	}
	if !bytes.Equal(ir.Stderr, tr.Stderr) {
		t.Errorf("%s: stderr diverged", label)
	}
	compareProfiles(t, label, ir.Prof, tr.Prof)
}

func compareProfiles(t *testing.T, label string, ip, tp *emu.Profile) {
	t.Helper()
	if (ip == nil) != (tp == nil) {
		t.Errorf("%s: profile presence mismatch", label)
		return
	}
	if ip == nil {
		return
	}
	if ip.Opcode != tp.Opcode {
		for op := range ip.Opcode {
			if ip.Opcode[op] != tp.Opcode[op] {
				t.Errorf("%s: opcode[%v] count %d != %d", label, x86.Op(op), ip.Opcode[op], tp.Opcode[op])
			}
		}
	}
	if len(ip.Heat) != len(tp.Heat) {
		t.Errorf("%s: heat map size %d != %d", label, len(ip.Heat), len(tp.Heat))
	}
	for addr, n := range ip.Heat {
		if tp.Heat[addr] != n {
			t.Errorf("%s: heat[%#x] %d != %d", label, addr, n, tp.Heat[addr])
		}
	}
	if len(ip.Syscalls) != len(tp.Syscalls) {
		t.Errorf("%s: syscall log length %d != %d", label, len(ip.Syscalls), len(tp.Syscalls))
	} else {
		for i := range ip.Syscalls {
			if ip.Syscalls[i] != tp.Syscalls[i] {
				t.Errorf("%s: syscall[%d] %+v != %+v", label, i, ip.Syscalls[i], tp.Syscalls[i])
			}
		}
	}
	if ip.Dropped != tp.Dropped {
		t.Errorf("%s: dropped syscalls %d != %d", label, ip.Dropped, tp.Dropped)
	}
	if ip.IBTChecks != tp.IBTChecks {
		t.Errorf("%s: IBT checks %d != %d", label, ip.IBTChecks, tp.IBTChecks)
	}
	if ip.NotrackBranches != tp.NotrackBranches {
		t.Errorf("%s: notrack branches %d != %d", label, ip.NotrackBranches, tp.NotrackBranches)
	}
	if ip.ShadowPushes != tp.ShadowPushes {
		t.Errorf("%s: shadow pushes %d != %d", label, ip.ShadowPushes, tp.ShadowPushes)
	}
	if ip.ShadowPops != tp.ShadowPops {
		t.Errorf("%s: shadow pops %d != %d", label, ip.ShadowPops, tp.ShadowPops)
	}
}

// TestParityCorpus runs every binary of the 48-configuration corpus on
// every test input under both engines — profiled (exercising the
// profiled dispatch loop and every counter) and unprofiled (the
// validation hot path) — and requires bit-identical results. It also
// requires the tiered engine to have actually translated the bulk of
// the work, so the parity is not vacuous.
func TestParityCorpus(t *testing.T) {
	cases, err := eval.BuildCorpus(0.02, cc.AllConfigs())
	if err != nil {
		t.Fatal(err)
	}
	var totalSteps, tierSteps uint64
	for _, c := range cases {
		inputs := c.Prog.Inputs
		if len(inputs) > 2 {
			inputs = inputs[:2]
		}
		for vi, vals := range inputs {
			input := make([]byte, 0, len(vals)*8)
			for _, v := range vals {
				for b := 0; b < 8; b++ {
					input = append(input, byte(uint64(v)>>(8*b)))
				}
			}
			label := c.Prog.Name + "/" + c.Config.String()

			ires, ierr := emu.Run(c.Bin, emu.Options{
				Input: input, Profile: true, Engine: emu.EngineInterpreter,
			})
			tres, terr := emu.Run(c.Bin, emu.Options{
				Input: input, Profile: true, Engine: emu.EngineTiered,
			})
			compareResults(t, label, ires, tres, ierr, terr)

			// Unprofiled tiered run (the fast dispatch loop) against the
			// same ground truth.
			fres, ferr := emu.Run(c.Bin, emu.Options{
				Input: input, Engine: emu.EngineTiered,
			})
			if errStr(ierr) != errStr(ferr) {
				t.Errorf("%s (fast): error mismatch: %v vs %v", label, ierr, ferr)
			} else if fres != nil && ires != nil {
				if fres.Exit != ires.Exit || fres.Steps != ires.Steps ||
					!bytes.Equal(fres.Stdout, ires.Stdout) || !bytes.Equal(fres.Stderr, ires.Stderr) {
					t.Errorf("%s (fast): behaviour diverged", label)
				}
				if fres.Tier != nil {
					totalSteps += fres.Steps
					tierSteps += fres.Tier.TierSteps
				}
			}
			if vi == 0 && tres != nil && tres.Tier == nil {
				t.Errorf("%s: tiered run reported no tier stats", label)
			}
		}
	}
	if totalSteps == 0 {
		t.Fatal("corpus executed nothing")
	}
	if frac := float64(tierSteps) / float64(totalSteps); frac < 0.5 {
		t.Errorf("tiered engine covered only %.1f%% of steps — parity would be vacuous", 100*frac)
	} else {
		t.Logf("tiered coverage: %.1f%% of %d steps", 100*float64(tierSteps)/float64(totalSteps), totalSteps)
	}
}

// machineState snapshots everything observable about a finished
// hand-built machine.
type machineState struct {
	regs   [16]uint64
	rip    uint64
	flags  x86.Flags
	steps  uint64
	stdout string
	stderr string
	err    string
}

func snapshot(m *emu.Machine, err error) machineState {
	return machineState{
		regs: m.Regs, rip: m.RIP, flags: m.Flags, steps: m.Steps,
		stdout: string(m.Stdout), stderr: string(m.Stderr), err: errStr(err),
	}
}

// buildRaw maps raw code bytes at base on a fresh machine with a stack.
func buildRaw(t *testing.T, code []byte, engine emu.EngineKind) *emu.Machine {
	t.Helper()
	m := emu.NewMachine()
	m.Engine = engine
	m.MaxSteps = 2000
	m.Mem.Map(0x1000, emu.PageSize, emu.PermR|emu.PermW)
	if err := m.Mem.Write(0x1000, code); err != nil {
		t.Fatal(err)
	}
	m.Mem.Protect(0x1000, emu.PageSize, emu.PermR|emu.PermX)
	m.Mem.Map(0x7FF00000-0x10000, 0x10000, emu.PermR|emu.PermW)
	m.Regs[x86.RSP] = 0x7FF00000 - 64
	m.RIP = 0x1000
	return m
}

// TestParityRandomCode feeds identical random byte soup to both
// engines. Random code faults in random ways — undecodable bytes,
// wild loads, budget exhaustion — so this differentially fuzzes the
// fallback edges and error wrapping. A heat seed over the whole page
// forces translation on first arrival everywhere it is possible at
// all, maximizing time spent in translated code.
func TestParityRandomCode(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	seed := make(map[uint64]uint64)
	for a := uint64(0x1000); a < 0x2000; a++ {
		seed[a] = 8
	}
	for i := 0; i < 400; i++ {
		code := make([]byte, 256)
		r.Read(code)

		mi := buildRaw(t, code, emu.EngineInterpreter)
		si := snapshot(mi, mi.Run())

		mt := buildRaw(t, code, emu.EngineTiered)
		mt.SetHeatSeed(seed)
		st := snapshot(mt, mt.Run())

		if si != st {
			t.Errorf("iteration %d diverged:\n  interp: %+v\n  tiered: %+v", i, si, st)
		}
	}
}

// TestParityRandomInstructions is the structured variant: encode
// random-but-valid instruction sequences, so runs last longer before
// faulting and exercise the specialized micro-ops (ALU widths, partial
// registers, shifts, cmov) rather than the decoder's reject path.
func TestParityRandomInstructions(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	regs := []x86.Reg{x86.RAX, x86.RBX, x86.RCX, x86.RDX, x86.RSI, x86.RDI, x86.R8, x86.R9}
	widths := []uint8{1, 2, 4, 8}
	for iter := 0; iter < 200; iter++ {
		var code []byte
		for len(code) < 200 {
			reg := func() x86.Reg { return regs[r.Intn(len(regs))] }
			w := widths[r.Intn(len(widths))]
			var in x86.Inst
			switch r.Intn(10) {
			case 0:
				in = x86.Inst{Op: x86.MOV, W: w, Dst: reg(), Src: x86.Imm(r.Int63n(1 << 30))}
			case 1:
				in = x86.Inst{Op: x86.MOV, W: w, Dst: reg(), Src: reg()}
			case 2:
				in = x86.Inst{Op: []x86.Op{x86.ADD, x86.SUB, x86.AND, x86.OR, x86.XOR}[r.Intn(5)], W: w, Dst: reg(), Src: reg()}
			case 3:
				in = x86.Inst{Op: []x86.Op{x86.CMP, x86.TEST}[r.Intn(2)], W: w, Dst: reg(), Src: x86.Imm(r.Int63n(128))}
			case 4:
				in = x86.Inst{Op: []x86.Op{x86.SHL, x86.SHR, x86.SAR}[r.Intn(3)], W: w, Dst: reg(), Src: x86.Imm(r.Int63n(70))}
			case 5:
				in = x86.Inst{Op: x86.SETCC, Cond: x86.Cond(r.Intn(10)), W: 1, Dst: reg()}
			case 6:
				in = x86.Inst{Op: x86.CMOVCC, Cond: x86.Cond(r.Intn(10)), W: []uint8{4, 8}[r.Intn(2)], Dst: reg(), Src: reg()}
			case 7:
				in = x86.Inst{Op: x86.LEA, W: 8, Dst: reg(), Src: x86.Mem{Base: reg(), Index: x86.NoReg, Disp: int32(r.Intn(64))}}
			case 8:
				in = x86.Inst{Op: x86.MOVZX, W: []uint8{4, 8}[r.Intn(2)], SrcW: []uint8{1, 2}[r.Intn(2)], Dst: reg(), Src: reg()}
			default:
				in = x86.Inst{Op: x86.IMUL, W: []uint8{4, 8}[r.Intn(2)], Dst: reg(), Src: reg()}
			}
			b, err := x86.Encode(in)
			if err != nil {
				continue
			}
			code = append(code, b...)
		}
		// Terminate with exit(RAX & 0xFF) so clean paths exist too.
		for _, in := range []x86.Inst{
			{Op: x86.MOV, W: 8, Dst: x86.RDI, Src: x86.RAX},
			{Op: x86.MOV, W: 8, Dst: x86.RAX, Src: x86.Imm(60)},
			{Op: x86.SYSCALL},
		} {
			b, err := x86.Encode(in)
			if err != nil {
				t.Fatal(err)
			}
			code = append(code, b...)
		}

		seed := map[uint64]uint64{0x1000: 8}
		mi := buildRaw(t, code, emu.EngineInterpreter)
		si := snapshot(mi, mi.Run())
		mt := buildRaw(t, code, emu.EngineTiered)
		mt.SetHeatSeed(seed)
		st := snapshot(mt, mt.Run())
		if si != st {
			t.Errorf("iteration %d diverged:\n  interp: %+v\n  tiered: %+v", iter, si, st)
		}
	}
}

// TestParityCxxAxes pins engine parity on C++-shaped binaries — landing
// pads, vtable dispatch through mid-table pointers, TLS, in-text data —
// across a slice of configurations that also spans the stripped and
// no-unwind axes, which the 48-config corpus above does not reach.
func TestParityCxxAxes(t *testing.T) {
	configs := []string{
		"gcc-11/ld/O2",
		"gcc-13/gold/O1",
		"clang-10/ld/O0",
		"clang-13/gold/O3/stripped",
		"gcc-11/ld/Os/nounwind",
		"clang-13/ld/O2/stripped",
	}
	for ci, cs := range configs {
		cfg, err := cc.ParseConfig(cs)
		if err != nil {
			t.Fatalf("config %q: %v", cs, err)
		}
		feats := gen.AllFeatures()
		feats.Stripped = cfg.Stripped
		p := gen.Generate("cxp", int64(ci+1), prog.Shapes["small"], feats)
		bin, err := cc.Compile(p.Module, cfg)
		if err != nil {
			t.Fatalf("compile %s: %v", cs, err)
		}
		inputs := p.Inputs
		if len(inputs) > 2 {
			inputs = inputs[:2]
		}
		for _, vals := range inputs {
			input := make([]byte, 0, len(vals)*8)
			for _, v := range vals {
				for b := 0; b < 8; b++ {
					input = append(input, byte(uint64(v)>>(8*b)))
				}
			}
			label := "cxx/" + cs
			ires, ierr := emu.Run(bin, emu.Options{Input: input, Profile: true, Engine: emu.EngineInterpreter})
			tres, terr := emu.Run(bin, emu.Options{Input: input, Profile: true, Engine: emu.EngineTiered})
			compareResults(t, label, ires, tres, ierr, terr)
		}
	}
}
