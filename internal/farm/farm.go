// Package farm is the concurrent rewrite farm: a bounded work-stealing
// worker pool that runs SURI pipeline jobs with per-job deadlines,
// panic isolation, bounded retry with backoff for transient failures,
// and queue backpressure — fronted by a content-addressed artifact
// cache (cache.go) and an HTTP batch service (server.go, cmd/surid).
//
// The pipeline is embarrassingly parallel across binaries: every stage
// of Figure 4 reads only its own input image. The farm exploits that
// with one queue per worker plus stealing, so a corpus run scales with
// GOMAXPROCS while results are still collected in submission order
// (Map), keeping evaluation-table output byte-identical to a
// sequential run.
//
// Every job carries an obs span (a detached child of the pool's
// lifetime span, safe under concurrency) and increments the farm.*
// counters, so the PR-1 tracing layer covers the farm end to end.
package farm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("farm: pool is closed")

// Task is one unit of farm work. The context carries the submitter's
// cancellation plus the pool's per-job deadline; deadlines are
// cooperative — a task that never reads ctx runs to completion, and
// the pool reports the result it returns.
type Task func(ctx context.Context) (any, error)

// Config configures a Pool. The zero value is usable: GOMAXPROCS
// workers, a 4×workers-deep queue, no deadline, no retries, no cache,
// no observability.
type Config struct {
	// Workers is the number of worker goroutines (default GOMAXPROCS).
	Workers int

	// QueueDepth bounds the number of queued-but-not-running jobs;
	// Submit blocks (backpressure) while the queue is full. Default
	// 4×Workers.
	QueueDepth int

	// JobTimeout is the per-job deadline handed to the task's context
	// (0 = none). Cooperative: CPU-bound tasks that ignore ctx are not
	// preempted.
	JobTimeout time.Duration

	// Retries is how many times a job reporting a Transient error is
	// re-run (in place, with Backoff doubling per attempt).
	Retries int

	// Backoff is the first retry delay (default 1ms); it doubles on
	// each subsequent retry and the wait honors job cancellation.
	Backoff time.Duration

	// Cache, if set, serves Pool.Rewrite from content-addressed
	// artifacts before any job is queued.
	Cache *Cache

	// Obs receives the pool-lifetime span, one child span per job, and
	// the farm.* counters. Nil disables collection at zero cost.
	Obs *obs.Collector
}

// job is one queued task plus its completion future and bookkeeping.
type job struct {
	ctx   context.Context
	label string
	task  Task
	fut   *Future
}

// Future is the pending result of a submitted job.
type Future struct {
	done chan struct{}
	val  any
	err  error
}

// Wait blocks until the job finishes or ctx is done, whichever comes
// first, and returns the job's result.
func (f *Future) Wait(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (f *Future) complete(val any, err error) {
	f.val, f.err = val, err
	close(f.done)
}

// Pool is a bounded work-stealing worker pool. Each worker owns a FIFO
// queue; Submit distributes round-robin, and an idle worker steals from
// the tail of a sibling's queue, so one slow binary cannot strand work
// behind it. All queues share one lock — contention is negligible next
// to the cost of a rewrite job.
type Pool struct {
	cfg Config

	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]*job
	closed bool

	closedCh chan struct{}
	sem      chan struct{} // queue-depth backpressure
	rr       atomic.Uint64 // round-robin submit counter
	wg       sync.WaitGroup

	span  *obs.Span
	reg   *obs.Registry
	group Group[*RewriteResult] // coalesces concurrent identical rewrites
}

// counterNames are pre-registered so a fresh /metrics export already
// lists every farm series (and golden tests see a stable payload).
var counterNames = []string{
	"farm.jobs_submitted", "farm.jobs_completed", "farm.jobs_failed",
	"farm.jobs_canceled", "farm.retries", "farm.timeouts", "farm.panics",
	"farm.cache_hits", "farm.cache_misses", "farm.cache_disk_hits",
	"farm.cache_write_errors", "farm.coalesced",
	"farm.verdict_validated", "farm.verdict_degraded", "farm.verdict_fallback",
}

// New starts a pool. Callers must Close it to release the workers.
func New(cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = time.Millisecond
	}
	p := &Pool{
		cfg:      cfg,
		queues:   make([][]*job, cfg.Workers),
		closedCh: make(chan struct{}),
		sem:      make(chan struct{}, cfg.QueueDepth),
		reg:      cfg.Obs.Metrics(),
	}
	p.cond = sync.NewCond(&p.mu)
	for _, name := range counterNames {
		p.reg.Counter(name)
	}
	p.reg.Gauge("farm.workers").Set(int64(cfg.Workers))
	p.reg.Gauge("farm.queue_depth").Set(int64(cfg.QueueDepth))
	p.span = cfg.Obs.Trace().StartRoot("farm.pool")
	p.span.SetInt("workers", int64(cfg.Workers))
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

// Submit enqueues a task. It blocks while the queue is at QueueDepth
// (backpressure) until a slot frees, ctx is done, or the pool closes.
// The returned Future resolves when the job finishes; the job itself
// runs under ctx (plus the pool's JobTimeout), so canceling ctx skips
// the job if it has not started yet. Do not Submit from inside a Task:
// a full queue would deadlock the worker against itself.
func (p *Pool) Submit(ctx context.Context, label string, task Task) (*Future, error) {
	if task == nil {
		return nil, errors.New("farm: nil task")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.closedCh:
		return nil, ErrClosed
	}
	fut := &Future{done: make(chan struct{})}
	j := &job{ctx: ctx, label: label, task: task, fut: fut}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.sem
		return nil, ErrClosed
	}
	w := int(p.rr.Add(1)-1) % len(p.queues)
	p.queues[w] = append(p.queues[w], j)
	p.mu.Unlock()
	p.cond.Signal()
	p.counter("farm.jobs_submitted").Inc()
	return fut, nil
}

// Do submits a task and waits for its result.
func (p *Pool) Do(ctx context.Context, label string, task Task) (any, error) {
	fut, err := p.Submit(ctx, label, task)
	if err != nil {
		return nil, err
	}
	return fut.Wait(ctx)
}

// Map submits n tasks and waits for all of them, returning results
// ordered by task index — never by completion order. That ordering is
// the determinism contract the evaluation tables rely on: folding
// Map's output sequentially is bit-identical to running the tasks on
// one goroutine. errs[i] is the pool- or task-level error for task i.
func (p *Pool) Map(ctx context.Context, label string, n int, gen func(i int) Task) ([]any, []error) {
	futs := make([]*Future, n)
	vals := make([]any, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		fut, err := p.Submit(ctx, label, gen(i))
		if err != nil {
			errs[i] = err
			continue
		}
		futs[i] = fut
	}
	for i, fut := range futs {
		if fut == nil {
			continue
		}
		vals[i], errs[i] = fut.Wait(ctx)
	}
	return vals, errs
}

// Close stops accepting jobs, drains the queues (already-queued jobs
// still run, unless their own contexts are canceled), waits for every
// worker to exit, and closes the pool span. Safe to call twice.
func (p *Pool) Close() {
	p.mu.Lock()
	already := p.closed
	if !already {
		p.closed = true
		close(p.closedCh)
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	if !already {
		p.span.End()
	}
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.cfg.Workers }

// Cache returns the pool's artifact cache (nil when none).
func (p *Pool) Cache() *Cache { return p.cfg.Cache }

// Obs returns the pool's collector (nil when none).
func (p *Pool) Obs() *obs.Collector { return p.cfg.Obs }

func (p *Pool) counter(name string) *obs.Counter { return p.reg.Counter(name) }

func (p *Pool) worker(i int) {
	defer p.wg.Done()
	for {
		j, ok := p.take(i)
		if !ok {
			return
		}
		<-p.sem // the job left the queue: free one backpressure slot
		p.run(i, j)
	}
}

// take pops the next job: the worker's own queue first (FIFO), then a
// steal scan over the siblings' queues, taking from the victim's tail
// — the classic work-stealing discipline, which keeps the victim's
// head (its oldest, next-to-run job) untouched. Blocks while idle;
// returns false once the pool is closed and every queue is drained.
func (p *Pool) take(i int) (*job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if q := p.queues[i]; len(q) > 0 {
			j := q[0]
			q[0] = nil
			p.queues[i] = q[1:]
			return j, true
		}
		for k := 1; k < len(p.queues); k++ {
			v := (i + k) % len(p.queues)
			if q := p.queues[v]; len(q) > 0 {
				j := q[len(q)-1]
				q[len(q)-1] = nil
				p.queues[v] = q[:len(q)-1]
				return j, true
			}
		}
		if p.closed {
			return nil, false
		}
		p.cond.Wait()
	}
}

// run executes one job with cancellation checks, bounded transient
// retry, and outcome accounting. The per-job span hangs off the pool
// span via the detached-child path, so concurrent jobs never corrupt
// the trace's open-span stack.
func (p *Pool) run(wi int, j *job) {
	span := p.span.StartChild("job:" + j.label)
	span.SetInt("worker", int64(wi))
	defer span.End()

	if err := j.ctx.Err(); err != nil {
		p.counter("farm.jobs_canceled").Inc()
		span.SetStr("outcome", "canceled")
		j.fut.complete(nil, err)
		return
	}

	var val any
	var err error
	backoff := p.cfg.Backoff
	for attempt := 0; ; attempt++ {
		val, err = p.runOnce(j)
		if err == nil || attempt >= p.cfg.Retries || !IsTransient(err) {
			break
		}
		if !p.sleep(j.ctx, backoff) {
			err = j.ctx.Err()
			break
		}
		p.counter("farm.retries").Inc()
		backoff *= 2
	}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded) && j.ctx.Err() == nil:
			// The pool's own deadline fired, not the submitter's.
			p.counter("farm.timeouts").Inc()
			span.SetStr("outcome", "timeout")
		case errors.Is(err, context.Canceled) && j.ctx.Err() != nil:
			p.counter("farm.jobs_canceled").Inc()
			span.SetStr("outcome", "canceled")
		default:
			p.counter("farm.jobs_failed").Inc()
			span.SetStr("outcome", "failed")
		}
	} else {
		p.counter("farm.jobs_completed").Inc()
		span.SetStr("outcome", "ok")
	}
	j.fut.complete(val, err)
}

// runOnce executes the task once with the job deadline applied and any
// panic converted to a *PanicError, so one crashing binary reports an
// error instead of killing the whole farm.
func (p *Pool) runOnce(j *job) (val any, err error) {
	ctx := j.ctx
	if p.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.cfg.JobTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			p.counter("farm.panics").Inc()
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
		}
	}()
	return j.task(ctx)
}

// sleep waits d honoring cancellation; false means the job was canceled.
func (p *Pool) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// PanicError wraps a recovered job panic.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string { return fmt.Sprintf("farm: job panicked: %v", e.Value) }

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient marks err as retryable: the pool re-runs a job whose task
// returns a transient error, up to Config.Retries times with
// exponential backoff. Deterministic pipeline failures (a binary that
// cannot be rewritten) should NOT be marked transient — retrying them
// burns a worker for the same answer.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// with Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}
