package asm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/x86"
)

// Reloc is a rebase relocation with R_X86_64_RELATIVE semantics: the
// 8-byte word at link-time address Offset holds Addend, and a loader that
// maps the image at base B must store B+Addend there.
type Reloc struct {
	Offset uint64
	Addend uint64
}

// OutSection is one placed section of an assembled program.
type OutSection struct {
	Name  string
	Flags SectionFlags
	Addr  uint64
	Size  uint64
	Align uint64
	Data  []byte // nil for Nobits sections
}

// Result is the output of Assemble.
type Result struct {
	Sections []OutSection
	Symbols  map[string]uint64
	Relocs   []Reloc

	// RelaxRounds is how many layout passes branch relaxation took to
	// converge (1 means no rel8 branch ever grew).
	RelaxRounds int
}

// Symbol looks up a defined symbol.
func (r *Result) Symbol(name string) (uint64, bool) {
	v, ok := r.Symbols[name]
	return v, ok
}

// SectionData returns the named output section, or nil.
func (r *Result) SectionData(name string) *OutSection {
	for i := range r.Sections {
		if r.Sections[i].Name == name {
			return &r.Sections[i]
		}
	}
	return nil
}

// Assemble lays out the program starting at base, resolves all symbolic
// operands, and returns the placed sections, the symbol table, and the
// rebase relocations for Quad items.
//
// Branch relaxation is grow-only: every JMP/JCC with a symbolic target
// starts in its rel8 form and is promoted to rel32 when the displacement
// does not fit; promotion is never undone, so layout converges even in the
// presence of alignment padding.
func Assemble(p *Program, base uint64) (*Result, error) {
	a := assembler{prog: p, base: base, long: make(map[[2]int]bool)}
	return a.run()
}

type assembler struct {
	prog *Program
	base uint64
	long map[[2]int]bool // (section, item) -> branch forced to rel32

	syms   map[string]uint64
	addrs  [][]uint64 // per section, per item
	starts []uint64   // per section start address
	ends   []uint64   // per section end address
}

const maxRelaxRounds = 64

func (a *assembler) run() (*Result, error) {
	rounds := 0
	for round := 0; ; round++ {
		if round > maxRelaxRounds {
			return nil, fmt.Errorf("asm: branch relaxation did not converge after %d rounds", maxRelaxRounds)
		}
		if err := a.layout(); err != nil {
			return nil, err
		}
		grown, err := a.growBranches()
		if err != nil {
			return nil, err
		}
		rounds = round + 1
		if !grown {
			break
		}
	}
	res, err := a.emit()
	if res != nil {
		res.RelaxRounds = rounds
	}
	return res, err
}

// layout assigns addresses to every item and defines all symbols under the
// current relaxation state.
func (a *assembler) layout() error {
	a.syms = make(map[string]uint64)
	for _, set := range a.prog.Sets {
		if _, dup := a.syms[set.Name]; dup {
			return fmt.Errorf("asm: duplicate symbol %q", set.Name)
		}
		a.syms[set.Name] = set.Addr
	}
	a.addrs = make([][]uint64, len(a.prog.Sections))
	a.starts = make([]uint64, len(a.prog.Sections))
	a.ends = make([]uint64, len(a.prog.Sections))

	cursor := a.base
	for si, s := range a.prog.Sections {
		align := s.Align
		if align == 0 {
			align = 1
		}
		cursor = alignUp(cursor, align)
		if s.HasAddr {
			if s.Addr < cursor {
				return fmt.Errorf("asm: section %s fixed at %#x overlaps previous section ending at %#x",
					s.Name, s.Addr, cursor)
			}
			cursor = s.Addr
		}
		a.starts[si] = cursor
		a.addrs[si] = make([]uint64, len(s.Items))
		for ii, it := range s.Items {
			a.addrs[si][ii] = cursor
			if lbl, ok := it.(Label); ok {
				if _, dup := a.syms[lbl.Name]; dup {
					return fmt.Errorf("asm: duplicate symbol %q in section %s", lbl.Name, s.Name)
				}
				a.syms[lbl.Name] = cursor
				continue
			}
			n, err := a.itemSize(si, ii, it, cursor)
			if err != nil {
				return fmt.Errorf("asm: section %s item %d: %w", s.Name, ii, err)
			}
			cursor += n
		}
		a.ends[si] = cursor
	}
	return nil
}

func (a *assembler) itemSize(si, ii int, it Item, addr uint64) (uint64, error) {
	switch v := it.(type) {
	case Ins:
		in := v.X
		if v.Sym != "" {
			if _, isRel := in.Src.(x86.Rel); isRel && (in.Op == x86.JMP || in.Op == x86.JCC) {
				in.Src = x86.Rel(0)
				in.LongBranch = a.long[[2]int{si, ii}]
			}
		}
		n, err := x86.EncodedLen(in)
		return uint64(n), err
	case Bytes:
		return uint64(len(v.Data)), nil
	case Quad, QuadLit:
		return 8, nil
	case LongLit, LongDiff:
		return 4, nil
	case AlignTo:
		if v.N == 0 {
			return 0, nil
		}
		return alignUp(addr, v.N) - addr, nil
	case Space:
		return v.N, nil
	}
	return 0, fmt.Errorf("unknown item type %T", it)
}

// growBranches promotes any symbolic rel8 branch whose displacement no
// longer fits. It reports whether anything changed.
func (a *assembler) growBranches() (bool, error) {
	grown := false
	for si, s := range a.prog.Sections {
		for ii, it := range s.Items {
			v, ok := it.(Ins)
			if !ok || v.Sym == "" {
				continue
			}
			if _, isRel := v.X.Src.(x86.Rel); !isRel || (v.X.Op != x86.JMP && v.X.Op != x86.JCC) {
				continue
			}
			key := [2]int{si, ii}
			if a.long[key] {
				continue
			}
			target, ok := a.syms[v.Sym]
			if !ok {
				return false, fmt.Errorf("asm: undefined symbol %q in section %s", v.Sym, s.Name)
			}
			size, err := a.itemSize(si, ii, it, a.addrs[si][ii])
			if err != nil {
				return false, err
			}
			rel := int64(target) + v.Add - int64(a.addrs[si][ii]+size)
			if rel < -128 || rel > 127 {
				a.long[key] = true
				grown = true
			}
		}
	}
	return grown, nil
}

func (a *assembler) emit() (*Result, error) {
	res := &Result{Symbols: a.syms}
	for si, s := range a.prog.Sections {
		start := a.starts[si]
		out := OutSection{
			Name:  s.Name,
			Flags: s.Flags,
			Addr:  start,
			Size:  a.ends[si] - start,
			Align: maxU64(s.Align, 1),
		}
		if s.Flags&Nobits != 0 {
			for ii, it := range s.Items {
				switch it.(type) {
				case Label, Space, AlignTo:
				default:
					return nil, fmt.Errorf("asm: section %s item %d: data item in nobits section", s.Name, ii)
				}
			}
			res.Sections = append(res.Sections, out)
			continue
		}
		data := make([]byte, 0, out.Size)
		for ii, it := range s.Items {
			addr := a.addrs[si][ii]
			b, relocs, err := a.emitItem(si, ii, it, addr)
			if err != nil {
				return nil, fmt.Errorf("asm: section %s item %d (%s): %w", s.Name, ii, ItemString(it), err)
			}
			data = append(data, b...)
			res.Relocs = append(res.Relocs, relocs...)
		}
		if uint64(len(data)) != out.Size {
			return nil, fmt.Errorf("asm: section %s: emitted %d bytes, layout said %d", s.Name, len(data), out.Size)
		}
		out.Data = data
		res.Sections = append(res.Sections, out)
	}
	sort.Slice(res.Relocs, func(i, j int) bool { return res.Relocs[i].Offset < res.Relocs[j].Offset })
	return res, nil
}

func (a *assembler) emitItem(si, ii int, it Item, addr uint64) ([]byte, []Reloc, error) {
	switch v := it.(type) {
	case Label:
		return nil, nil, nil
	case Ins:
		return a.emitIns(si, ii, v, addr)
	case Bytes:
		return v.Data, nil, nil
	case Quad:
		target, ok := a.resolve(v.Sym)
		if !ok {
			return nil, nil, fmt.Errorf("undefined symbol %q", v.Sym)
		}
		val := uint64(int64(target) + v.Add)
		return binary.LittleEndian.AppendUint64(nil, val), []Reloc{{Offset: addr, Addend: val}}, nil
	case QuadLit:
		return binary.LittleEndian.AppendUint64(nil, uint64(v)), nil, nil
	case LongLit:
		return binary.LittleEndian.AppendUint32(nil, uint32(v)), nil, nil
	case LongDiff:
		plus, ok := a.resolve(v.Plus)
		if !ok {
			return nil, nil, fmt.Errorf("undefined symbol %q", v.Plus)
		}
		minus, ok := a.resolve(v.Minus)
		if !ok {
			return nil, nil, fmt.Errorf("undefined symbol %q", v.Minus)
		}
		diff := int64(plus) - int64(minus) + v.Add
		if diff < -1<<31 || diff > 1<<31-1 {
			return nil, nil, fmt.Errorf("difference %s-%s = %#x exceeds 32 bits", v.Plus, v.Minus, diff)
		}
		return binary.LittleEndian.AppendUint32(nil, uint32(int32(diff))), nil, nil
	case AlignTo:
		size, _ := a.itemSize(si, ii, it, addr)
		sec := a.prog.Sections[si]
		if sec.Flags&Exec != 0 {
			return x86.NopBytes(int(size)), nil, nil
		}
		return make([]byte, size), nil, nil
	case Space:
		return make([]byte, v.N), nil, nil
	}
	return nil, nil, fmt.Errorf("unknown item type %T", it)
}

func (a *assembler) emitIns(si, ii int, v Ins, addr uint64) ([]byte, []Reloc, error) {
	in := v.X
	if v.DispPlus != "" || v.DispMinus != "" {
		return a.emitInsDiff(v)
	}
	if v.Sym == "" {
		b, err := x86.Encode(in)
		return b, nil, err
	}
	target, ok := a.resolve(v.Sym)
	if !ok {
		return nil, nil, fmt.Errorf("undefined symbol %q", v.Sym)
	}
	size, err := a.itemSize(si, ii, v, addr)
	if err != nil {
		return nil, nil, err
	}
	dest := int64(target) + v.Add
	rel := dest - int64(addr+size)

	if _, isRel := in.Src.(x86.Rel); isRel {
		if rel < -1<<31 || rel > 1<<31-1 {
			return nil, nil, fmt.Errorf("branch to %q out of rel32 range (%#x)", v.Sym, rel)
		}
		in.Src = x86.Rel(int32(rel))
		in.LongBranch = a.long[[2]int{si, ii}]
		b, err := x86.Encode(in)
		if err != nil {
			return nil, nil, err
		}
		if uint64(len(b)) != size {
			return nil, nil, fmt.Errorf("branch size drifted: assumed %d, got %d", size, len(b))
		}
		return b, nil, nil
	}

	m, ok := in.MemArg()
	if !ok || !m.Rip {
		return nil, nil, fmt.Errorf("symbolic operand %q on instruction without relative operand: %s", v.Sym, in)
	}
	if rel < -1<<31 || rel > 1<<31-1 {
		return nil, nil, fmt.Errorf("RIP reference to %q out of disp32 range (%#x)", v.Sym, rel)
	}
	m.Disp = int32(rel)
	if _, isMem := in.Dst.(x86.Mem); isMem {
		in.Dst = m
	} else {
		in.Src = m
	}
	b, err := x86.Encode(in)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(b)) != size {
		return nil, nil, fmt.Errorf("RIP operand size drifted: assumed %d, got %d", size, len(b))
	}
	return b, nil, nil
}

// emitInsDiff encodes an instruction whose memory displacement carries a
// symbol difference.
func (a *assembler) emitInsDiff(v Ins) ([]byte, []Reloc, error) {
	plus, ok := a.resolve(v.DispPlus)
	if !ok {
		return nil, nil, fmt.Errorf("undefined symbol %q", v.DispPlus)
	}
	minus, ok := a.resolve(v.DispMinus)
	if !ok {
		return nil, nil, fmt.Errorf("undefined symbol %q", v.DispMinus)
	}
	in := v.X
	m, ok := in.MemArg()
	if !ok || m.Rip {
		return nil, nil, fmt.Errorf("displacement difference requires a non-RIP memory operand: %s", in)
	}
	if !m.Wide {
		return nil, nil, fmt.Errorf("displacement difference requires a Wide memory operand: %s", in)
	}
	diff := int64(m.Disp) + int64(plus) - int64(minus)
	if diff < -1<<31 || diff > 1<<31-1 {
		return nil, nil, fmt.Errorf("displacement %s-%s = %#x exceeds 32 bits", v.DispPlus, v.DispMinus, diff)
	}
	m.Disp = int32(diff)
	if _, isMem := in.Dst.(x86.Mem); isMem {
		in.Dst = m
	} else {
		in.Src = m
	}
	b, err := x86.Encode(in)
	return b, nil, err
}

func (a *assembler) resolve(name string) (uint64, bool) {
	v, ok := a.syms[name]
	return v, ok
}

func alignUp(v, align uint64) uint64 {
	if align <= 1 {
		return v
	}
	return (v + align - 1) &^ (align - 1)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
