package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestFlightRingWrap fills a small ring past capacity and checks that
// the retained window is the newest events, oldest-first, with gapless
// sequence numbers and the total still counting everything.
func TestFlightRingWrap(t *testing.T) {
	f := NewFlight(4, &FakeClock{Step: 1})
	for i := 0; i < 10; i++ {
		f.Record(Event{Kind: "stage", Name: string(rune('a' + i))})
	}
	if f.Total() != 10 {
		t.Fatalf("total = %d, want 10", f.Total())
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(7 + i)
		wantName := string(rune('a' + 6 + i))
		if e.Seq != wantSeq || e.Name != wantName {
			t.Fatalf("event %d = seq %d name %q, want seq %d name %q", i, e.Seq, e.Name, wantSeq, wantName)
		}
		if e.T != int64(6+i) {
			t.Fatalf("event %d time %d, want %d", i, e.T, 6+i)
		}
	}
	if last := f.Last(2); len(last) != 2 || last[1].Seq != 10 {
		t.Fatalf("Last(2) = %+v", last)
	}
	if all := f.Last(0); len(all) != 4 {
		t.Fatalf("Last(0) = %d events, want 4", len(all))
	}
}

// TestFlightRequestScope routes events through request-scoped collector
// views and checks that tagging and per-request filtering work.
func TestFlightRequestScope(t *testing.T) {
	c := NewWithClock(&FakeClock{Step: 1}).EnableFlight(16)
	r1 := c.WithRequest("r1")
	r2 := c.WithRequest("r2").MetricsOnly() // views must keep the scope
	r1.Record(Event{Kind: "stage", Name: "cfg"})
	r2.Record(Event{Kind: "stage", Name: "cfg"})
	r1.Record(Event{Kind: "stage_error", Name: "emit", Detail: "boom"})
	c.Record(Event{Kind: "request", Name: "/rewrite"})

	got := c.Flight().RequestEvents("r1")
	if len(got) != 2 || got[0].Name != "cfg" || got[1].Detail != "boom" {
		t.Fatalf("r1 events = %+v", got)
	}
	if got := c.Flight().RequestEvents("r2"); len(got) != 1 {
		t.Fatalf("r2 events = %+v", got)
	}
	if c.Flight().Total() != 4 {
		t.Fatalf("total = %d, want 4", c.Flight().Total())
	}
	// The request-scoped view owns a private trace; spans started there
	// must not appear on the shared collector's trace.
	s := r1.Trace().Start("rewrite")
	s.End()
	if len(c.Trace().Roots()) != 0 {
		t.Fatal("request-scoped span leaked into the shared trace")
	}
	if len(r1.Trace().Roots()) != 1 {
		t.Fatal("request-scoped trace lost its span")
	}
}

// TestFlightJSONDeterministic renders the ring twice on a fake clock
// and requires byte equality plus the documented shape.
func TestFlightJSONDeterministic(t *testing.T) {
	build := func() *Flight {
		f := NewFlight(8, &FakeClock{Step: 1000})
		f.Record(Event{Kind: "stage", Name: "cfg", Dur: 420})
		f.Record(Event{Kind: "stage_error", Name: "emit", Detail: "injected", Req: "r7"})
		return f
	}
	a, err := build().JSON(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().JSON(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("flight JSON nondeterministic")
	}
	var out struct {
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(a, &out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 2 || len(out.Events) != 2 || out.Events[1].Req != "r7" {
		t.Fatalf("flight JSON shape wrong: %s", a)
	}
	if !strings.Contains(string(a), "\"kind\": \"stage_error\"") {
		t.Fatalf("stage_error event missing: %s", a)
	}
}

// TestFlightConcurrent hammers one ring from many goroutines (run under
// -race via scripts/check.sh): the total must be exact and the retained
// window must hold gapless, strictly increasing sequence numbers.
func TestFlightConcurrent(t *testing.T) {
	f := NewFlight(64, nil)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Record(Event{Kind: "stage", Name: "cfg"})
			}
		}()
	}
	wg.Wait()
	if f.Total() != workers*per {
		t.Fatalf("total = %d, want %d", f.Total(), workers*per)
	}
	evs := f.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("sequence gap: %d -> %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[len(evs)-1].Seq != workers*per {
		t.Fatalf("newest seq = %d, want %d", evs[len(evs)-1].Seq, workers*per)
	}
}

// TestQuantileEstimates checks the bucket-walking estimator against
// hand-computed values, including the overflow-bucket lower bound.
func TestQuantileEstimates(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []int64{100, 200, 400})
	for i := 0; i < 50; i++ {
		h.Observe(50) // le100
	}
	for i := 0; i < 30; i++ {
		h.Observe(150) // le200
	}
	for i := 0; i < 15; i++ {
		h.Observe(300) // le400
	}
	for i := 0; i < 5; i++ {
		h.Observe(10_000) // overflow
	}
	if got := h.Quantile(0.5); got != 100 {
		t.Fatalf("p50 = %d, want 100 (upper edge of the first bucket)", got)
	}
	// rank 95 lands exactly at the top of le400.
	if got := h.Quantile(0.95); got != 400 {
		t.Fatalf("p95 = %d, want 400", got)
	}
	// Overflow bucket: estimate is pinned to the last bound.
	if got := h.Quantile(0.999); got != 400 {
		t.Fatalf("p999 = %d, want 400", got)
	}
	// rank 40 is halfway through the 50-observation first bucket.
	if got := h.Quantile(0.4); got != 80 {
		t.Fatalf("p40 = %d, want 80", got)
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile != 0")
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	// Snapshot carries the same estimates.
	snap := reg.Snapshot().Histograms[0]
	if snap.P50 != 100 || snap.P95 != 400 || snap.Quantile(0.4) != 80 {
		t.Fatalf("snapshot quantiles wrong: %+v", snap)
	}
}

// TestLatencyHistogramBounds pins the shared latency bucket layout: log
// spaced, first bound 1µs, covering >100s, and shared by name.
func TestLatencyHistogramBounds(t *testing.T) {
	if LatencyBounds[0] != 1024 {
		t.Fatalf("first bound = %d, want 1024", LatencyBounds[0])
	}
	last := LatencyBounds[len(LatencyBounds)-1]
	if last < 100_000_000_000 {
		t.Fatalf("last bound = %d, want >= 100s", last)
	}
	for i := 1; i < len(LatencyBounds); i++ {
		if LatencyBounds[i] != 2*LatencyBounds[i-1] {
			t.Fatalf("bounds not log-spaced at %d", i)
		}
	}
	reg := NewRegistry()
	if reg.LatencyHistogram("x") != reg.Histogram("x", nil) {
		t.Fatal("latency histogram identity broken")
	}
}
