package emit

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/cfg"
	"repro/internal/elfx"
	"repro/internal/mini"
	"repro/internal/repair"
	"repro/internal/serialize"
)

func pipelineInput(t *testing.T) Input {
	t.Helper()
	m := &mini.Module{
		Name: "e",
		Funcs: []*mini.Func{{
			Name: "main",
			Body: []mini.Stmt{mini.Print{E: mini.Const(9)}, mini.Return{E: mini.Const(0)}},
		}},
	}
	bin, err := cc.Compile(m, cc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f, err := elfx.Read(bin)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(f, cfg.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	entries, err := serialize.Serialize(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := repair.Repair(entries, g)
	if err != nil {
		t.Fatal(err)
	}
	return Input{Graph: g, Entries: entries, Sets: rep.Sets}
}

func TestEmitLayout(t *testing.T) {
	in := pipelineInput(t)
	bin, layout, err := Emit(in)
	if err != nil {
		t.Fatal(err)
	}
	if layout.NewTextAddr == 0 || layout.NewTextSize == 0 {
		t.Errorf("layout: %+v", layout)
	}
	f, err := elfx.Read(bin)
	if err != nil {
		t.Fatal(err)
	}
	if f.Entry != layout.NewEntry {
		t.Errorf("entry %#x, layout says %#x", f.Entry, layout.NewEntry)
	}
	if f.Entry < layout.NewTextAddr || f.Entry >= layout.NewTextAddr+layout.NewTextSize {
		t.Errorf("entry %#x outside new text", f.Entry)
	}
	// No W+X segment may exist, and the original exec segment must have
	// lost execute rights.
	execLoads := 0
	for _, seg := range f.Segments {
		if seg.Type != elfx.PTLoad {
			continue
		}
		if seg.Flags&elfx.PFX != 0 {
			execLoads++
			if seg.Flags&elfx.PFW != 0 {
				t.Error("W+X segment in output")
			}
			if seg.Vaddr < layout.NewTextAddr {
				t.Errorf("original segment at %#x still executable", seg.Vaddr)
			}
		}
	}
	if execLoads != 1 {
		t.Errorf("%d executable segments, want exactly the new text", execLoads)
	}
}

func TestEmitTablePatchErrors(t *testing.T) {
	in := pipelineInput(t)
	in.TablePatches = []TablePatch{{Addr: 0x2000, Plus: "no_such_label", Base: 0x2000}}
	if _, _, err := Emit(in); err == nil || !strings.Contains(err.Error(), "no_such_label") {
		t.Errorf("undefined patch target accepted: %v", err)
	}
}

func TestEmitTablePatchApplies(t *testing.T) {
	in := pipelineInput(t)
	// Patch the first word of .rodata to the distance from .rodata to
	// the copied entry block.
	orig := in.Graph.File
	ro := orig.Section(".rodata")
	if ro == nil {
		t.Skip("no rodata")
	}
	in.TablePatches = []TablePatch{{
		Addr: ro.Addr,
		Plus: serialize.LabelFor(orig.Entry),
		Base: ro.Addr,
	}}
	bin, layout, err := Emit(in)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := elfx.Read(bin)
	got := f.Section(".rodata").Data
	v := int32(uint32(got[0]) | uint32(got[1])<<8 | uint32(got[2])<<16 | uint32(got[3])<<24)
	want := int64(layout.NewEntry) - int64(ro.Addr)
	if int64(v) != want {
		t.Errorf("patched word = %d, want %d", v, want)
	}
}
