package fleet

import (
	"context"
	"net/url"
	"time"

	"repro/internal/obs"
)

// Hedged requests: a slow-but-alive worker must not drag p999 for its
// whole key range. When the primary's in-flight time exceeds an
// adaptive per-worker threshold, the coordinator fires the same request
// at the ring successor and takes whichever succeeds first, canceling
// the loser via context — the cancellation propagates through the
// worker's request context into the pipeline's Cancel budget, so a
// losing execution stops instead of finishing for nobody. Hedges run
// inside the singleflight leader (the group key is the content
// address), so a hedge can never double pipeline work for coalesced
// waiters; and since a replicated successor holds the artifact, the
// common hedge win is a cache hit, not a second execution.

// hedgeThreshold computes when to hedge a request to w: the worker's
// rolling HedgeQuantile latency times HedgeMultiplier, floored at
// HedgeAfter. Until the rolling window has samples, the cumulative
// fleet.worker_ns histogram seeds the estimate, so a restarted
// coordinator does not hedge blind.
func (c *Coordinator) hedgeThreshold(w *worker) time.Duration {
	est := w.lat.Quantile(c.opts.HedgeQuantile)
	if est == 0 {
		est = c.reg.LatencyHistogram("fleet.worker_ns." + w.name).Quantile(c.opts.HedgeQuantile)
	}
	d := time.Duration(float64(est) * c.opts.HedgeMultiplier)
	if d < c.opts.HedgeAfter {
		d = c.opts.HedgeAfter
	}
	return d
}

// hedgeResult is one arm's outcome inside forwardHedged.
type hedgeResult struct {
	fw    *forwarded
	err   error
	w     *worker
	hedge bool
}

// definitive reports whether an arm's outcome settles the request: a
// transport error or a 5xx is retryable (the forward loop fails over),
// anything else — success or a client-fault 4xx — is the answer.
func definitive(r hedgeResult) bool {
	return r.err == nil && r.fw.status < 500
}

// forwardHedged races the primary against one ring successor: the
// primary starts immediately, the successor only after the primary has
// been in flight longer than its hedge threshold. First definitive
// answer wins and the loser's context is canceled. When both arms fail
// retryably, the primary's outcome is returned so the caller's failover
// loop proceeds exactly as it would have unhedged.
func (c *Coordinator) forwardHedged(ctx context.Context, primary, succ *worker, bin []byte, q url.Values, rc *obs.Collector) (*forwarded, error) {
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()

	results := make(chan hedgeResult, 2)
	launch := func(actx context.Context, w *worker, hedge bool) {
		fw, err := c.forwardTo(actx, w, bin, q, rc)
		results <- hedgeResult{fw: fw, err: err, w: w, hedge: hedge}
	}
	go launch(pctx, primary, false)

	timer := time.NewTimer(c.hedgeThreshold(primary))
	defer timer.Stop()

	hedged := false
	var primaryLoss *hedgeResult
	pending := 1
	for pending > 0 {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				pending++
				c.reg.Counter("fleet.hedges").Inc()
				rc.Record(obs.Event{Kind: "fleet", Name: "hedge", Detail: primary.name + "->" + succ.name})
				go launch(hctx, succ, true)
			}
		case r := <-results:
			pending--
			if definitive(r) {
				if r.hedge {
					c.reg.Counter("fleet.hedge_wins").Inc()
					rc.Record(obs.Event{Kind: "fleet", Name: "hedge_win", Detail: succ.name})
					pcancel()
				} else if hedged {
					hcancel()
				}
				return r.fw, nil
			}
			if !r.hedge {
				if !hedged {
					// The primary failed outright before the hedge armed:
					// nothing is racing, hand the failure straight back to
					// the failover loop.
					return r.fw, r.err
				}
				primaryLoss = &r
			}
		}
	}
	// Both arms failed retryably. Report the primary's failure (the
	// failover loop will mark it dead on a transport error and walk on
	// to the successor itself).
	if primaryLoss != nil {
		return primaryLoss.fw, primaryLoss.err
	}
	return nil, ctx.Err()
}
