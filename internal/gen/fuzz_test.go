package gen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harden"
	"repro/internal/mini"
	"repro/internal/prog"
)

// TestFuzzFindsSeededBug is the minimizer proof: with the repair stage
// forced to fail, a one-seed campaign must observe the pipeline falling
// back, shrink the case well below the generated program, and write a
// regression file that replays once the fault is gone.
func TestFuzzFindsSeededBug(t *testing.T) {
	outDir := t.TempDir()
	seed := int64(101) // known-sound from TestFuzzDeterministic

	disarm := harden.NewPlan(harden.Fault{Point: harden.FPRepair}).Arm()
	rep := Fuzz(FuzzOptions{
		Seeds:          1,
		Start:          seed,
		Shape:          prog.Shapes["small"],
		OutDir:         outDir,
		MinimizeBudget: 40,
	})
	disarm()

	if len(rep.Findings) != 1 {
		t.Fatalf("findings=%d, want 1: %+v", len(rep.Findings), rep.Findings)
	}
	f := rep.Findings[0]
	if f.Kind != "rewrite-fallback" {
		t.Fatalf("kind=%q, want rewrite-fallback (detail: %s)", f.Kind, f.Detail)
	}

	// The minimizer must have shrunk the module well below the original.
	_, feats := DeriveCase(seed)
	orig := len(mini.Format(Generate("fz_101", seed, prog.Shapes["small"], feats).Module))
	if len(f.Minimized) >= orig*3/4 {
		t.Fatalf("minimized %d bytes, want < 3/4 of original %d", len(f.Minimized), orig)
	}

	// The regression file must exist, parse, and — with the fault
	// disarmed — replay cleanly through the full pipeline.
	if f.Path == "" {
		t.Fatalf("no regression file written")
	}
	src, err := os.ReadFile(f.Path)
	if err != nil {
		t.Fatalf("read regression: %v", err)
	}
	if string(src) != f.Minimized {
		t.Fatalf("file content differs from finding")
	}
	c, err := ParseRegression(string(src))
	if err != nil {
		t.Fatalf("parse regression: %v", err)
	}
	if kind, detail := Reproduce(c); kind != "" {
		t.Fatalf("regression still failing after disarm: %s (%s)", kind, detail)
	}

	// Re-arming must reproduce the original kind from the minimized case.
	disarm = harden.NewPlan(harden.Fault{Point: harden.FPRepair}).Arm()
	kind, _ := Reproduce(c)
	disarm()
	if kind != "rewrite-fallback" {
		t.Fatalf("minimized case does not reproduce under fault: %q", kind)
	}
}

// TestRegressionRoundTrip: format → parse must preserve the case.
func TestRegressionRoundTrip(t *testing.T) {
	p := Generate("rt", 5, prog.Shapes["small"], AllFeatures())
	cfg, _ := DeriveCase(5)
	c := ShrinkCase{Module: p.Module, Config: cfg, Inputs: p.Inputs}
	src := FormatRegression("rt", c)
	got, err := ParseRegression(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.Config != cfg {
		t.Fatalf("config %v != %v", got.Config, cfg)
	}
	if mini.Format(got.Module) != mini.Format(p.Module) {
		t.Fatalf("module changed across round trip")
	}
	if len(got.Inputs) != len(p.Inputs) {
		t.Fatalf("inputs %d != %d", len(got.Inputs), len(p.Inputs))
	}
	for i := range got.Inputs {
		for j := range got.Inputs[i] {
			if got.Inputs[i][j] != p.Inputs[i][j] {
				t.Fatalf("input %d differs", i)
			}
		}
	}
}

// TestCheckedInRegressions replays every regression under testdata:
// each must parse and run sound end to end (they document bugs that are
// fixed, or shapes that once degraded the pipeline).
func TestCheckedInRegressions(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "regress", "*.mini"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no checked-in regressions found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(string(src), "// surifuzz regression:") {
				t.Fatalf("missing regression header")
			}
			c, err := ParseRegression(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if kind, detail := Reproduce(c); kind != "" {
				t.Fatalf("regression fails: %s (%s)", kind, detail)
			}
		})
	}
}
