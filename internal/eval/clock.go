package eval

import "time"

var evalEpoch = time.Now()

// nanotime returns monotonic nanoseconds since package init.
func nanotime() int64 { return int64(time.Since(evalEpoch)) }
