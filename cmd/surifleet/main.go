// Command surifleet is the fleet coordinator: it fronts N surid
// workers with one service endpoint, consistent-hashing every rewrite's
// content address across the worker set so each worker's artifact cache
// stays hot for its own key range.
//
//	POST /rewrite        one rewrite, same query grammar as surid; the
//	                     response carries fleet serving metadata
//	                     (source, worker, coalesced) on top of the
//	                     worker's answer
//	POST /batch          NDJSON {"id","binary","params"} jobs in,
//	                     NDJSON results out as each finishes, one
//	                     summary line last
//	GET  /healthz        fleet membership + cache/admission counters
//	                     (503 once draining)
//	GET  /metrics        Prometheus exposition of the fleet.* series
//	                     (?format=text for the human dump)
//	GET  /debug/flight   the coordinator's flight recorder (?n=, ?req=)
//	POST /fleet/register worker self-registration {"url":"..."}
//
// The coordinator layers a two-tier artifact cache (in-memory LRU over
// an optional shared -cache-dir) in front of the fleet, coalesces
// concurrent identical rewrites into a single forwarded execution, and
// applies degrade-before-shed admission control: past -degrade-at
// in-flight requests a ?validate=1 request is served as a plain rewrite
// (verdict "degraded" in the response); past -max-inflight it is shed
// with 503 and a backlog-proportional Retry-After.
//
// Membership is health-check driven: workers join via -workers or
// /fleet/register (surid -register), a -health-interval sweep probes
// each worker's /healthz, and a dead or draining worker leaves the hash
// ring — its keys re-hash to the survivors, and in-flight requests fail
// over with bounded retry. A dead worker whose /healthz recovers
// rejoins on the next sweep.
//
// Resilience: -replicate N pushes each executed artifact to the next N
// ring successors (PUT /cache on the worker), so killing a key's owner
// costs a failover cache hit, not a recompute; -hedge-after D races a
// forward against the ring successor once it has been in flight longer
// than max(D, -hedge-multiplier × the worker's rolling -hedge-quantile
// latency), first success wins, the loser is canceled. -chaos arms
// seeded transport faults (drop, delay, 5xx, slow-body, probe flap) for
// soak-testing exactly those paths.
//
// Usage:
//
//	surifleet [-addr :8650] [-workers URL,URL,...] [-replicas N]
//	          [-cache-dir DIR] [-cache-entries N] [-max-inflight N]
//	          [-degrade-at N] [-batch-concurrency N] [-max-body BYTES]
//	          [-timeout D] [-health-interval D] [-retry N]
//	          [-replicate N] [-replica-queue N] [-hedge-after D]
//	          [-hedge-quantile Q] [-hedge-multiplier M] [-chaos SPEC]
//	          [-budget N] [-budget-steps N] [-flight N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/harden"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8650", "listen address")
	workers := flag.String("workers", "", "comma-separated worker base URLs (more can register at runtime)")
	replicas := flag.Int("replicas", 0, "virtual nodes per worker on the hash ring (0 = 64)")
	cacheDir := flag.String("cache-dir", "", "shared disk tier for rewrite artifacts (empty = memory only)")
	cacheEntries := flag.Int("cache-entries", 256, "coordinator in-memory artifact cache size (LRU)")
	maxInflight := flag.Int("max-inflight", 0, "in-flight requests before shedding with 503 (0 = 256)")
	degradeAt := flag.Int("degrade-at", 0, "in-flight requests before ?validate=1 degrades to a plain rewrite (0 = max-inflight/2)")
	batchConcurrency := flag.Int("batch-concurrency", 0, "concurrent jobs per batch (0 = max-inflight/2)")
	maxBody := flag.Int64("max-body", 0, "max request body / batch line bytes (0 = 64 MiB)")
	reqTimeout := flag.Duration("timeout", 0, "per-request deadline (0 = none)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "worker health poll period (0 = disabled)")
	retry := flag.Int("retry", 0, "ring successors to try per request (0 = all)")
	replicate := flag.Int("replicate", 0, "push each executed artifact to this many ring successors (0 = off)")
	replicaQueue := flag.Int("replica-queue", 0, "async replication backlog before drop-and-count (0 = 64)")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge threshold floor: race the ring successor once a forward exceeds it (0 = hedging off)")
	hedgeQuantile := flag.Float64("hedge-quantile", 0, "per-worker rolling latency quantile the hedge threshold tracks (0 = 0.9)")
	hedgeMultiplier := flag.Float64("hedge-multiplier", 0, "hedge at this multiple of the worker's quantile latency (0 = 2)")
	chaos := flag.String("chaos", "", "transport fault plan: seed:<n>[:maxVictims[:minDur]] or mode:worker[:dur[:after[:times]]] ';'-chained (modes: "+strings.Join(harden.ChaosModes, ", ")+")")
	budgetInsts := flag.Int64("budget", 0, "default decoded-instruction budget, must match the workers (0 = pipeline default)")
	budgetSteps := flag.Uint64("budget-steps", 0, "default emulator-step budget, must match the workers (0 = pipeline default)")
	flightEvents := flag.Int("flight", 4096, "flight recorder capacity in events (0 = disabled)")
	flag.Parse()

	col := obs.New()
	if *flightEvents > 0 {
		col.EnableFlight(*flightEvents)
	}
	var workerURLs []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			workerURLs = append(workerURLs, u)
		}
	}
	coord, err := fleet.NewCoordinator(fleet.Options{
		Workers:          workerURLs,
		Replicas:         *replicas,
		CacheEntries:     *cacheEntries,
		CacheDir:         *cacheDir,
		MaxInflight:      *maxInflight,
		DegradeAt:        *degradeAt,
		BatchConcurrency: *batchConcurrency,
		MaxBodyBytes:     *maxBody,
		Budget:           harden.Budget{TotalInsts: *budgetInsts, EmuSteps: *budgetSteps},
		RequestTimeout:   *reqTimeout,
		HealthInterval:   *healthInterval,
		Retry:            *retry,
		Replicate:        *replicate,
		ReplicaQueue:     *replicaQueue,
		HedgeAfter:       *hedgeAfter,
		HedgeQuantile:    *hedgeQuantile,
		HedgeMultiplier:  *hedgeMultiplier,
		Obs:              col,
		ErrorLog:         log.Default(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "surifleet:", err)
		os.Exit(1)
	}
	if *chaos != "" {
		// Chaos plans are keyed by ring name (w0, w1, ...), which the
		// coordinator assigns to -workers in order.
		names := make([]string, len(workerURLs))
		for i := range workerURLs {
			names[i] = fmt.Sprintf("w%d", i)
		}
		plan, err := fleet.ParseChaos(*chaos, names)
		if err != nil {
			fmt.Fprintln(os.Stderr, "surifleet:", err)
			os.Exit(1)
		}
		disarm := plan.Arm()
		defer disarm()
		log.Printf("surifleet: CHAOS ARMED %q -> %v", *chaos, plan.Points())
	}
	srv := &http.Server{Addr: *addr, Handler: coord}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Print("surifleet: draining")
		coord.SetDraining(true)
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("surifleet: shutdown: %v", err)
		}
	}()

	log.Printf("surifleet: listening on %s (%d workers, cache %d entries, dir %q, health every %s)",
		*addr, len(workerURLs), *cacheEntries, *cacheDir, *healthInterval)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "surifleet:", err)
		os.Exit(1)
	}
	<-done
	coord.Close()
	log.Print("surifleet: bye")
}
