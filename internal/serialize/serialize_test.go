package serialize

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/cfg"
	"repro/internal/elfx"
	"repro/internal/mini"
	"repro/internal/x86"
)

func buildGraph(t *testing.T) *cfg.Graph {
	t.Helper()
	m := &mini.Module{
		Name: "s",
		Funcs: []*mini.Func{
			{Name: "f", NParams: 1, Body: []mini.Stmt{
				mini.If{Cond: mini.Bin{Op: mini.Lt, L: mini.Var("p0"), R: mini.Const(3)},
					Then: []mini.Stmt{mini.Return{E: mini.Const(1)}},
					Else: []mini.Stmt{mini.Return{E: mini.Const(2)}}},
			}},
			{Name: "main", Body: []mini.Stmt{
				mini.Print{E: mini.Call{Name: "f", Args: []mini.Expr{mini.Const(5)}}},
			}},
		},
	}
	bin, err := cc.Compile(m, cc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f, err := elfx.Read(bin)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(f, cfg.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSerializeCoversAllBlocks(t *testing.T) {
	g := buildGraph(t)
	entries, err := Serialize(g)
	if err != nil {
		t.Fatal(err)
	}

	// Every block start must be labelled exactly once.
	labels := map[string]int{}
	for _, e := range entries {
		for _, l := range e.Labels {
			labels[l]++
		}
	}
	for addr := range g.Blocks {
		if labels[LabelFor(addr)] != 1 {
			t.Errorf("block %#x labelled %d times", addr, labels[LabelFor(addr)])
		}
	}
	if labels[TrapLabel] != 1 {
		t.Error("trap label missing")
	}

	// Every original instruction appears exactly once.
	count := 0
	for _, e := range entries {
		if !e.Synth {
			count++
		}
	}
	if count != g.NumInstructions() {
		t.Errorf("serialized %d instructions, graph has %d", count, g.NumInstructions())
	}
}

func TestSerializeDirectBranchesSymbolic(t *testing.T) {
	g := buildGraph(t)
	entries, err := Serialize(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Synth {
			continue
		}
		if _, ok := e.Inst.BranchTarget(e.Addr, e.Size); ok && e.Target == "" {
			t.Errorf("direct branch at %#x (%s) not symbolized", e.Addr, e.Inst)
		}
	}
}

// TestSerializeFallThroughOrder: when a block's fall-through successor is
// not the next emitted block, an explicit jump must be inserted.
func TestSerializeFallThroughOrder(t *testing.T) {
	g := buildGraph(t)
	entries, err := Serialize(g)
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct: walk entries; before each label boundary where the
	// previous original instruction falls through, either the label must
	// be the fall target (adjacency) or a synthesized jmp must precede.
	for i := 1; i < len(entries); i++ {
		if len(entries[i].Labels) == 0 {
			continue
		}
		prev := entries[i-1]
		if prev.Synth {
			continue // inserted jump or trap: fine
		}
		if prev.Inst.Op.IsTerminator() {
			continue
		}
		// prev falls through; the next label must include its successor
		// address implicitly (adjacency is guaranteed by address order,
		// so just verify the blocks are address-adjacent).
		if prev.Addr != 0 {
			next := prev.Addr + uint64(prev.Size)
			found := false
			for _, l := range entries[i].Labels {
				if l == LabelFor(next) {
					found = true
				}
			}
			if !found && prev.Inst.Op != x86.JCC {
				// A non-branch falling into a non-adjacent label would
				// change semantics.
				t.Errorf("instruction at %#x falls into label(s) %v, expected %s",
					prev.Addr, entries[i].Labels, LabelFor(next))
			}
		}
	}
}

func TestCount(t *testing.T) {
	g := buildGraph(t)
	entries, err := Serialize(g)
	if err != nil {
		t.Fatal(err)
	}
	orig, synth := Count(entries)
	if orig == 0 || synth == 0 {
		t.Errorf("Count = %d, %d", orig, synth)
	}
	if orig+synth != len(entries) {
		t.Errorf("Count doesn't partition entries: %d+%d != %d", orig, synth, len(entries))
	}
}
