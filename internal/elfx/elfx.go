// Package elfx reads and writes ELF64 x86-64 files at the byte level.
//
// It exists instead of debug/elf because the pipeline needs to *produce*
// ELF binaries (the compiler and the emitter) and to perform the surgical
// edits of §3.6 — appending sections and segments to an existing binary,
// flipping segment permissions, moving the entry point, and rewriting
// relocation entries — none of which the stdlib reader supports. The
// format subset is genuine ELF: files written here are parseable by
// debug/elf (tests verify this).
package elfx

import "sort"

// ELF constants (only the subset this repository uses).
const (
	// File types.
	ETDyn uint16 = 3 // shared object / PIE

	// Machine.
	EMX8664 uint16 = 62

	// Program header types.
	PTLoad        uint32 = 1
	PTDynamic     uint32 = 2
	PTNote        uint32 = 4
	PTTLS         uint32 = 7
	PTGNUProperty uint32 = 0x6474e553

	// Program header flags.
	PFX uint32 = 1
	PFW uint32 = 2
	PFR uint32 = 4

	// Section header types.
	SHTNull     uint32 = 0
	SHTProgbits uint32 = 1
	SHTSymtab   uint32 = 2
	SHTStrtab   uint32 = 3
	SHTRela     uint32 = 4
	SHTNobits   uint32 = 8
	SHTDynamic  uint32 = 6
	SHTNote     uint32 = 7

	// Section flags.
	SHFWrite     uint64 = 1
	SHFAlloc     uint64 = 2
	SHFExecinstr uint64 = 4
	SHFTLS       uint64 = 0x400

	// Relocation types.
	RX8664Relative uint32 = 8

	// Dynamic tags.
	DTNull    int64 = 0
	DTRela    int64 = 7
	DTRelasz  int64 = 8
	DTRelaent int64 = 9
	DTFlags   int64 = 30

	// GNU property note constants.
	NTGNUPropertyType0         uint32 = 5
	GNUPropertyX86Feature1And  uint32 = 0xc0000002
	GNUPropertyX86FeatureIBT   uint32 = 1 << 0
	GNUPropertyX86FeatureSHSTK uint32 = 1 << 1

	// Symbol table encoding.
	SymSize       = 24
	STGlobal byte = 1
	STTFunc  byte = 2

	// Layout.
	EhdrSize = 64
	PhdrSize = 56
	ShdrSize = 64
	RelaSize = 24
	PageSize = 0x1000
)

// Section is an ELF section.
type Section struct {
	Name    string
	Type    uint32
	Flags   uint64
	Addr    uint64
	Off     uint64 // assigned by Write; preserved by Read
	Size    uint64
	Link    uint32
	Info    uint32
	Align   uint64
	Entsize uint64
	Data    []byte // nil for SHTNobits
}

// Segment is an ELF program header entry.
type Segment struct {
	Type   uint32
	Flags  uint32
	Off    uint64
	Vaddr  uint64
	Filesz uint64
	Memsz  uint64
	Align  uint64
}

// Rela is a relocation entry with an explicit addend.
type Rela struct {
	Off    uint64
	Type   uint32
	Sym    uint32
	Addend int64
}

// File is a parsed or to-be-written ELF file.
type File struct {
	Type     uint16
	Entry    uint64
	Sections []*Section // excludes the null section and .shstrtab
	Segments []*Segment
	Raw      []byte // original bytes when parsed by Read; nil otherwise
}

// Section returns the named section, or nil.
func (f *File) Section(name string) *Section {
	for _, s := range f.Sections {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// MaxVaddr returns the highest mapped virtual address across PT_LOAD
// segments, rounded up to page size.
func (f *File) MaxVaddr() uint64 {
	var max uint64
	for _, seg := range f.Segments {
		if seg.Type != PTLoad {
			continue
		}
		if end := seg.Vaddr + seg.Memsz; end > max {
			max = end
		}
	}
	return (max + PageSize - 1) &^ (PageSize - 1)
}

// HasCET reports whether the file's .note.gnu.property section declares
// both IBT and SHSTK support — the definition of "CET-enabled" in §2.3.
func (f *File) HasCET() bool {
	sec := f.Section(".note.gnu.property")
	if sec == nil {
		return false
	}
	ibt, shstk := ParseGNUProperty(sec.Data)
	return ibt && shstk
}

// IsPIE reports whether the file is a position-independent executable.
func (f *File) IsPIE() bool { return f.Type == ETDyn }

// BuildLoadSegments merges address-adjacent alloc sections with equal
// permissions into PT_LOAD segments (offset == vaddr layout).
func BuildLoadSegments(sections []*Section) []*Segment {
	alloc := make([]*Section, 0, len(sections))
	for _, s := range sections {
		if s.Flags&SHFAlloc != 0 {
			alloc = append(alloc, s)
		}
	}
	sort.Slice(alloc, func(i, j int) bool { return alloc[i].Addr < alloc[j].Addr })

	var segs []*Segment
	var cur *Segment
	var curPerm uint32
	for _, s := range alloc {
		perm := uint32(PFR)
		if s.Flags&SHFWrite != 0 {
			perm |= PFW
		}
		if s.Flags&SHFExecinstr != 0 {
			perm |= PFX
		}
		if cur == nil || perm != curPerm {
			cur = &Segment{
				Type: PTLoad, Flags: perm,
				Off: s.Addr, Vaddr: s.Addr, Align: PageSize,
			}
			curPerm = perm
			segs = append(segs, cur)
		}
		end := s.Addr + s.Size
		cur.Memsz = end - cur.Vaddr
		if s.Type != SHTNobits {
			cur.Filesz = end - cur.Vaddr
		}
	}
	return segs
}
