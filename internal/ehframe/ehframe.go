// Package ehframe writes and reads the .eh_frame call-frame-information
// section in its real DWARF wire format (CIE/FDE records, ULEB128/SLEB128
// fields, DW_EH_PE_pcrel|sdata4 pointer encoding).
//
// The compiler uses it to emit unwind tables (present by default in
// modern toolchains, §6.3); SURI's superset CFG builder uses the FDE
// [initial_location, initial_location+address_range) intervals as an
// optional source of function entry points (§3.2.1). Per the paper,
// the information is an accelerator, never a correctness requirement.
package ehframe

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/harden"
)

var le = binary.LittleEndian

// Decode errors. Truncation (input ended mid-value) and overflow (a
// syntactically complete value that does not fit, or a runaway
// continuation run) are distinct conditions: a fuzzer-minimized crash
// reading "truncated" on an 11-byte input would hide the real bug.
var (
	ErrTruncated = errors.New("ehframe: truncated LEB128")
	ErrOverflow  = errors.New("ehframe: LEB128 value overflows 64 bits")
)

// FuncRange describes one FDE: a function's code interval, plus the
// address of its language-specific data area (0 = none). A non-zero
// LSDA makes Build emit the C++-style "zLR" CIE with a pcrel|sdata4
// LSDA pointer in each FDE's augmentation data — the .gcc_except_table
// linkage real compilers produce for functions with landing pads.
type FuncRange struct {
	Start uint64
	Size  uint64
	LSDA  uint64
}

// Pointer encodings (subset).
const (
	pePCRel  = 0x10
	peSData4 = 0x0B
	peFDEEnc = pePCRel | peSData4
)

// AppendULEB appends a ULEB128-encoded value.
func AppendULEB(b []byte, v uint64) []byte {
	for {
		c := byte(v & 0x7F)
		v >>= 7
		if v != 0 {
			c |= 0x80
		}
		b = append(b, c)
		if v == 0 {
			return b
		}
	}
}

// AppendSLEB appends an SLEB128-encoded value.
func AppendSLEB(b []byte, v int64) []byte {
	for {
		c := byte(v & 0x7F)
		v >>= 7
		done := (v == 0 && c&0x40 == 0) || (v == -1 && c&0x40 != 0)
		if !done {
			c |= 0x80
		}
		b = append(b, c)
		if done {
			return b
		}
	}
}

// ReadULEB decodes a ULEB128 value, returning it and the bytes consumed.
// A 64-bit value needs at most 10 groups; the 10th may only carry the
// low bit, so any spill into shift 64+ is ErrOverflow, not truncation.
func ReadULEB(b []byte) (uint64, int, error) {
	var v uint64
	var shift uint
	for i := 0; i < len(b); i++ {
		g := b[i] & 0x7F
		if shift > 63 || (shift == 63 && g > 1) {
			return 0, 0, ErrOverflow
		}
		v |= uint64(g) << shift
		if b[i]&0x80 == 0 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, ErrTruncated
}

// ReadSLEB decodes an SLEB128 value. Continuation runs past the 64-bit
// range are ErrOverflow; the 10th group may carry only the sign
// extension of bit 63 (0x00 or 0x7F).
func ReadSLEB(b []byte) (int64, int, error) {
	var v int64
	var shift uint
	for i := 0; i < len(b); i++ {
		g := b[i] & 0x7F
		if shift > 63 || (shift == 63 && g != 0 && g != 0x7F) {
			return 0, 0, ErrOverflow
		}
		v |= int64(g) << shift
		shift += 7
		if b[i]&0x80 == 0 {
			if shift < 64 && g&0x40 != 0 {
				v |= -1 << shift
			}
			return v, i + 1, nil
		}
	}
	return 0, 0, ErrTruncated
}

// Build serializes an .eh_frame section for the given function ranges.
// sectionAddr is the virtual address where the section will be placed
// (needed because FDE initial_location uses pc-relative encoding).
func Build(sectionAddr uint64, funcs []FuncRange) []byte {
	var out []byte

	// A module with any landing pads uses the C++-style "zLR" CIE, whose
	// FDEs carry an LSDA pointer; a module without stays byte-identical
	// to the historical "zR" form.
	hasLSDA := false
	for _, f := range funcs {
		if f.LSDA != 0 {
			hasLSDA = true
			break
		}
	}

	// CIE.
	cie := []byte{1} // version
	if hasLSDA {
		cie = append(cie, 'z', 'L', 'R', 0) // augmentation
	} else {
		cie = append(cie, 'z', 'R', 0) // augmentation
	}
	cie = AppendULEB(cie, 1)  // code alignment factor
	cie = AppendSLEB(cie, -8) // data alignment factor
	cie = AppendULEB(cie, 16) // return address register (RA)
	if hasLSDA {
		cie = AppendULEB(cie, 2)    // augmentation data length
		cie = append(cie, peFDEEnc) // LSDA pointer encoding
	} else {
		cie = AppendULEB(cie, 1) // augmentation data length
	}
	cie = append(cie, peFDEEnc)        // FDE pointer encoding
	cie = append(cie, 0x0c, 0x07, 8)   // DW_CFA_def_cfa RSP+8
	cie = append(cie, 0x90|0x10, 0x01) // DW_CFA_offset RA, cfa-8
	for len(cie)%8 != 4 {
		cie = append(cie, 0) // DW_CFA_nop padding; total record 8-aligned
	}
	out = le.AppendUint32(out, uint32(len(cie)+4)) // length
	out = le.AppendUint32(out, 0)                  // CIE id
	out = append(out, cie...)

	// FDEs.
	for _, f := range funcs {
		fde := make([]byte, 0, 24)
		// pc_begin: pcrel sdata4, relative to the pc_begin field itself.
		// The field sits 8 bytes into the FDE record (after length and
		// CIE pointer).
		fieldAddr := sectionAddr + uint64(len(out)) + 8
		fde = le.AppendUint32(fde, uint32(int32(int64(f.Start)-int64(fieldAddr))))
		fde = le.AppendUint32(fde, uint32(f.Size))
		if hasLSDA {
			fde = AppendULEB(fde, 4) // augmentation data length
			// LSDA pointer: pcrel sdata4 against its own field; the raw
			// value 0 marks a function without one.
			if f.LSDA != 0 {
				lsdaField := fieldAddr + uint64(len(fde))
				fde = le.AppendUint32(fde, uint32(int32(int64(f.LSDA)-int64(lsdaField))))
			} else {
				fde = le.AppendUint32(fde, 0)
			}
		} else {
			fde = AppendULEB(fde, 0) // augmentation data length
		}
		for (len(fde)+8)%8 != 0 {
			fde = append(fde, 0) // DW_CFA_nop
		}
		out = le.AppendUint32(out, uint32(len(fde)+4))
		// CIE pointer: distance from this field back to the CIE start.
		out = le.AppendUint32(out, uint32(len(out)))
		out = append(out, fde...)
	}

	// Terminator.
	out = le.AppendUint32(out, 0)
	return out
}

// Parse walks an .eh_frame section placed at sectionAddr and returns the
// function ranges of all FDEs. Unknown CIE augmentations or encodings
// other than pcrel|sdata4 are rejected; malformed records end the walk
// with an error. A nil or empty section yields no ranges.
func Parse(sectionAddr uint64, data []byte) ([]FuncRange, error) {
	if err := harden.Inject(harden.FPEhFrameParse); err != nil {
		return nil, fmt.Errorf("ehframe: %w", err)
	}
	var funcs []FuncRange
	cies := make(map[uint64]cieInfo)

	pos := uint64(0)
	for pos+4 <= uint64(len(data)) {
		length := uint64(le.Uint32(data[pos:]))
		if length == 0 {
			break // terminator
		}
		if length == 0xFFFFFFFF {
			return nil, fmt.Errorf("ehframe: 64-bit DWARF records unsupported")
		}
		if length < 4 {
			return nil, fmt.Errorf("ehframe: record at %#x too short for CIE pointer", pos)
		}
		recStart := pos
		body := pos + 4
		end := body + length
		if end > uint64(len(data)) {
			return nil, fmt.Errorf("ehframe: record at %#x overruns section", pos)
		}
		id := le.Uint32(data[body:])
		if id == 0 {
			ci, err := parseCIE(data[body+4 : end])
			if err != nil {
				return nil, fmt.Errorf("ehframe: CIE at %#x: %w", recStart, err)
			}
			cies[recStart] = ci
		} else {
			cieStart := body - uint64(id)
			ci, ok := cies[cieStart]
			if !ok {
				return nil, fmt.Errorf("ehframe: FDE at %#x references unknown CIE", recStart)
			}
			if ci.enc != peFDEEnc {
				return nil, fmt.Errorf("ehframe: unsupported pointer encoding %#x", ci.enc)
			}
			if body+12 > end {
				return nil, fmt.Errorf("ehframe: FDE at %#x too short", recStart)
			}
			fieldAddr := sectionAddr + body + 4
			delta := int32(le.Uint32(data[body+4:]))
			start := uint64(int64(fieldAddr) + int64(delta))
			size := uint64(le.Uint32(data[body+8:]))
			if start+size < start {
				return nil, fmt.Errorf("ehframe: FDE at %#x: pc-range [%#x, +%#x] overflows", recStart, start, size)
			}
			fr := FuncRange{Start: start, Size: size}
			if ci.hasLSDA {
				augLen, n, err := ReadULEB(data[body+12 : end])
				if err != nil {
					return nil, fmt.Errorf("ehframe: FDE at %#x: augmentation length: %w", recStart, err)
				}
				lsdaField := body + 12 + uint64(n)
				if augLen < 4 || lsdaField+4 > end {
					return nil, fmt.Errorf("ehframe: FDE at %#x: LSDA field overruns record", recStart)
				}
				if raw := le.Uint32(data[lsdaField:]); raw != 0 {
					fr.LSDA = uint64(int64(sectionAddr+lsdaField) + int64(int32(raw)))
				}
			}
			funcs = append(funcs, fr)
		}
		pos = end
	}
	return funcs, nil
}

// cieInfo is what Parse needs from a CIE: the FDE pointer encoding and
// whether its FDEs carry an LSDA pointer ('L' augmentation).
type cieInfo struct {
	enc     byte
	lsdaEnc byte
	hasLSDA bool
}

// parseCIE extracts the FDE pointer encoding (and LSDA encoding, for
// "zL..R" augmentations) from a CIE body (after the id field). The
// augmentation data bytes are consumed in the order the augmentation
// letters dictate.
func parseCIE(b []byte) (cieInfo, error) {
	if len(b) < 1 || b[0] != 1 {
		return cieInfo{}, fmt.Errorf("unsupported CIE version")
	}
	b = b[1:]
	// Augmentation string.
	augEnd := -1
	for i, c := range b {
		if c == 0 {
			augEnd = i
			break
		}
	}
	if augEnd < 0 {
		return cieInfo{}, fmt.Errorf("unterminated augmentation string")
	}
	aug := string(b[:augEnd])
	b = b[augEnd+1:]

	// code alignment, data alignment, return register.
	if _, n, err := ReadULEB(b); err != nil {
		return cieInfo{}, err
	} else {
		b = b[n:]
	}
	if _, n, err := ReadSLEB(b); err != nil {
		return cieInfo{}, err
	} else {
		b = b[n:]
	}
	if _, n, err := ReadULEB(b); err != nil {
		return cieInfo{}, err
	} else {
		b = b[n:]
	}

	if aug == "" {
		return cieInfo{}, fmt.Errorf("CIE without augmentation data")
	}
	if aug[0] != 'z' {
		return cieInfo{}, fmt.Errorf("unsupported augmentation %q", aug)
	}
	augLen, n, err := ReadULEB(b)
	if err != nil {
		return cieInfo{}, err
	}
	b = b[n:]
	if uint64(len(b)) < augLen {
		return cieInfo{}, fmt.Errorf("augmentation data overruns CIE")
	}
	augData := b[:augLen]
	var ci cieInfo
	sawR := false
	for _, c := range aug[1:] {
		switch c {
		case 'L':
			if len(augData) < 1 {
				return cieInfo{}, fmt.Errorf("missing L encoding byte")
			}
			ci.lsdaEnc = augData[0]
			ci.hasLSDA = true
			augData = augData[1:]
			if ci.lsdaEnc != peFDEEnc {
				return cieInfo{}, fmt.Errorf("unsupported LSDA encoding %#x", ci.lsdaEnc)
			}
		case 'R':
			if len(augData) < 1 {
				return cieInfo{}, fmt.Errorf("missing R encoding byte")
			}
			ci.enc = augData[0]
			augData = augData[1:]
			sawR = true
		default:
			return cieInfo{}, fmt.Errorf("unsupported augmentation letter %q", c)
		}
	}
	if !sawR {
		return cieInfo{}, fmt.Errorf("augmentation lacks R")
	}
	return ci, nil
}
