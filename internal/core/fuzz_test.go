package core

import (
	"errors"
	"testing"

	"repro/internal/cc"
	"repro/internal/harden"
)

// FuzzRewrite throws arbitrary bytes at the whole pipeline under a tight
// resource budget. Rewrite may reject — with a stage-tagged error or the
// scope error — but it must never panic and never return success without
// a binary. Seeded with a real compiled binary and structural mutants of
// it, so mutation explores the interesting neighbourhood of valid ELF
// rather than pure noise. Seed corpus: testdata/fuzz/FuzzRewrite
// (regenerate with scripts/gencorpus).
func FuzzRewrite(f *testing.F) {
	bin, err := cc.Compile(trapModule(), cc.DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add([]byte("not an elf"))
	f.Add(bin)
	f.Add(bin[:len(bin)/3])
	f.Fuzz(func(t *testing.T, data []byte) {
		// A tight budget bounds each case: garbage that happens to parse
		// cannot drag a fuzz iteration through millions of decodes.
		res, err := Rewrite(data, Options{Budget: harden.Budget{
			TotalInsts: 1 << 20,
			Blocks:     1 << 16,
		}})
		if err != nil {
			if Stage(err) == "" && !errors.Is(err, ErrNotCETPIE) {
				t.Fatalf("error without a stage tag: %v", err)
			}
			return
		}
		if res == nil || len(res.Binary) == 0 {
			t.Fatal("success without a binary")
		}
	})
}
