package x86

import "sync/atomic"

// Plane is a per-binary decode plane: a flat table indexed by byte
// offset into one text slab that memoizes the result of Decode at each
// offset, making every decode after the first a single array load.
// Within one superset-disassembly pass the builder rarely revisits an
// offset, so the plane's value is reuse: a rebuild of the same text
// (cfg.Options.Plane), the emulator fetching one page's instructions
// millions of times, or a frozen plane shared by farm workers.
//
// A Plane is single-goroutine while warm. After Freeze it becomes
// immutable and safe to share across goroutines: cached entries are
// read-only, cold offsets decode on the fly without being written back,
// and the hit/miss counters switch to an atomic pair.
//
// Two storage modes trade hit cost against GC cost:
//
//   - NewPlane stores pointer-free flattened instructions. The chunk
//     memory is invisible to the garbage collector (no scan, no write
//     barriers), which matters for whole-binary planes that live as
//     long as a CFG; a hit re-materializes the Inst (cheap, but boxing
//     a Mem or large Imm operand can allocate).
//   - NewExecPlane stores decoded Insts directly. A hit is a plain
//     struct copy — the right shape for the emulator, where one page's
//     instructions are fetched millions of times — at the price of
//     pointer-bearing chunks the GC must scan.
//
// Entry storage is chunked and allocated on first touch: superset
// disassembly decodes at instruction boundaries, not at every byte, so
// an eager entry-per-byte table would spend more time zeroing memory
// than the memoization saves on a cold build.
type Plane struct {
	text  []byte
	flat  []*flatChunk
	boxed []*boxedChunk

	frozen bool

	// Warm-phase counters: plain integers, because atomics on the
	// decode hot path cost more than the memoization saves on a cold
	// build. Freeze folds them into the shared atomic pair.
	hits   uint64
	misses uint64

	sharedHits   atomic.Uint64
	sharedMisses atomic.Uint64
}

// planeChunkShift sizes a chunk at 512 entries: big enough to amortize
// the allocation across a basic block's worth of decodes, small enough
// that a sparse text touch pattern stays cheap.
const (
	planeChunkShift = 9
	planeChunkLen   = 1 << planeChunkShift
	planeChunkMask  = planeChunkLen - 1
)

type boxedChunk struct {
	ents [planeChunkLen]boxedEntry
}

type flatChunk struct {
	ents [planeChunkLen]flatEntry
}

// Entry states. Decode can only fail with the two sentinel errors
// (plus the >15-byte length check, which is ErrBadInstruction), so the
// error is stored as a one-byte state instead of an interface.
const (
	planeCold byte = iota
	planeOK
	planeBad
	planeTrunc
)

type boxedEntry struct {
	inst  Inst
	size  uint8
	state byte
}

// flatEntry is a pointer-free image of a decoded instruction. Operand
// interfaces are collapsed into tagged unions so a populated chunk is
// noscan memory.
type flatEntry struct {
	op    Op
	cond  Cond
	w     uint8
	srcW  uint8
	flags uint8 // bit0 HasImm3, bit1 NoTrack, bit2 LongBranch
	size  uint8
	state byte
	imm3  int64
	dst   flatArg
	src   flatArg
}

// flatArg kinds.
const (
	faNone byte = iota
	faReg
	faImm
	faMem
	faRel
)

type flatArg struct {
	kind   byte
	reg    Reg   // faReg: the register; faMem: the base
	index  Reg   // faMem
	scale  uint8 // faMem
	mflags uint8 // faMem: bit0 Rip, bit1 Wide
	disp   int32 // faMem
	val    int64 // faImm / faRel
}

func flattenArg(a Arg, fa *flatArg) bool {
	switch v := a.(type) {
	case nil:
		fa.kind = faNone
	case Reg:
		fa.kind, fa.reg = faReg, v
	case Imm:
		fa.kind, fa.val = faImm, int64(v)
	case Rel:
		fa.kind, fa.val = faRel, int64(v)
	case Mem:
		fa.kind = faMem
		fa.reg, fa.index, fa.scale, fa.disp = v.Base, v.Index, v.Scale, v.Disp
		fa.mflags = 0
		if v.Rip {
			fa.mflags |= 1
		}
		if v.Wide {
			fa.mflags |= 2
		}
	default:
		return false
	}
	return true
}

func (fa *flatArg) arg() Arg {
	switch fa.kind {
	case faReg:
		return fa.reg
	case faImm:
		return Imm(fa.val)
	case faRel:
		return Rel(fa.val)
	case faMem:
		return Mem{Base: fa.reg, Index: fa.index, Scale: fa.scale, Disp: fa.disp,
			Rip: fa.mflags&1 != 0, Wide: fa.mflags&2 != 0}
	}
	return nil
}

func (e *flatEntry) store(in Inst, size int) bool {
	if !flattenArg(in.Dst, &e.dst) || !flattenArg(in.Src, &e.src) {
		return false
	}
	e.op, e.cond, e.w, e.srcW, e.imm3 = in.Op, in.Cond, in.W, in.SrcW, in.Imm3
	e.flags = 0
	if in.HasImm3 {
		e.flags |= 1
	}
	if in.NoTrack {
		e.flags |= 2
	}
	if in.LongBranch {
		e.flags |= 4
	}
	e.size = uint8(size)
	return true
}

func (e *flatEntry) inst() Inst {
	return Inst{
		Op: e.op, Cond: e.cond, W: e.w, SrcW: e.srcW,
		Dst: e.dst.arg(), Src: e.src.arg(),
		Imm3: e.imm3, HasImm3: e.flags&1 != 0,
		NoTrack: e.flags&2 != 0, LongBranch: e.flags&4 != 0,
	}
}

func chunkCount(n int) int { return (n + planeChunkMask) >> planeChunkShift }

// NewPlane builds a cold decode plane over text with pointer-free
// (GC-invisible) entry storage. Only the chunk index is allocated up
// front; entry chunks materialize on first decode.
func NewPlane(text []byte) *Plane {
	return &Plane{text: text, flat: make([]*flatChunk, chunkCount(len(text)))}
}

// NewExecPlane builds a cold decode plane whose entries store the
// decoded Inst directly, making hits a plain copy. Use for small, hot
// slabs (the emulator's executable pages).
func NewExecPlane(text []byte) *Plane {
	return &Plane{text: text, boxed: make([]*boxedChunk, chunkCount(len(text)))}
}

// Text returns the slab the plane decodes. Callers must not mutate it.
func (p *Plane) Text() []byte { return p.text }

// Len returns the slab length in bytes.
func (p *Plane) Len() int { return len(p.text) }

// Decode returns the instruction at byte offset off, memoizing the
// result. Offsets outside the slab return ErrTruncated. The returned
// error is always one of the Decode sentinels, never a wrapper, so
// errors.Is and == both work.
func (p *Plane) Decode(off int) (Inst, int, error) {
	if off < 0 || off >= len(p.text) {
		return Inst{}, 0, ErrTruncated
	}
	if p.boxed != nil {
		return p.decodeBoxed(off)
	}
	return p.decodeFlat(off)
}

func (p *Plane) decodeFlat(off int) (Inst, int, error) {
	c := p.flat[off>>planeChunkShift]
	if c == nil {
		if p.frozen {
			p.sharedMisses.Add(1)
			return Decode(p.text[off:])
		}
		c = &flatChunk{}
		p.flat[off>>planeChunkShift] = c
	}
	e := &c.ents[off&planeChunkMask]
	if e.state != planeCold {
		p.count(true)
		if e.state == planeOK {
			return e.inst(), int(e.size), nil
		}
		return Inst{}, 0, planeErr(e.state)
	}
	p.count(false)
	in, n, err := Decode(p.text[off:])
	if !p.frozen {
		if err == nil {
			if e.store(in, n) {
				e.state = planeOK
			}
		} else if err == ErrTruncated {
			e.state = planeTrunc
		} else {
			e.state = planeBad
		}
	}
	return in, n, err
}

func (p *Plane) decodeBoxed(off int) (Inst, int, error) {
	c := p.boxed[off>>planeChunkShift]
	if c == nil {
		if p.frozen {
			p.sharedMisses.Add(1)
			return Decode(p.text[off:])
		}
		c = &boxedChunk{}
		p.boxed[off>>planeChunkShift] = c
	}
	e := &c.ents[off&planeChunkMask]
	if e.state != planeCold {
		p.count(true)
		if e.state == planeOK {
			return e.inst, int(e.size), nil
		}
		return Inst{}, 0, planeErr(e.state)
	}
	p.count(false)
	in, n, err := Decode(p.text[off:])
	if !p.frozen {
		if err == nil {
			e.inst = in
			e.size = uint8(n)
			e.state = planeOK
		} else if err == ErrTruncated {
			e.state = planeTrunc
		} else {
			e.state = planeBad
		}
	}
	return in, n, err
}

func (p *Plane) count(hit bool) {
	if p.frozen {
		if hit {
			p.sharedHits.Add(1)
		} else {
			p.sharedMisses.Add(1)
		}
		return
	}
	if hit {
		p.hits++
	} else {
		p.misses++
	}
}

func planeErr(state byte) error {
	if state == planeTrunc {
		return ErrTruncated
	}
	return ErrBadInstruction
}

// Freeze makes the plane immutable: subsequent Decode calls never write
// entries (cold offsets decode fresh each time), which makes the plane
// safe to share across goroutines — e.g. one warm plane reused by every
// farm worker validating the same binary.
func (p *Plane) Freeze() {
	if p.frozen {
		return
	}
	p.sharedHits.Add(p.hits)
	p.sharedMisses.Add(p.misses)
	p.hits, p.misses = 0, 0
	p.frozen = true
}

// Frozen reports whether Freeze has been called.
func (p *Plane) Frozen() bool { return p.frozen }

// Stats returns the cumulative hit/miss counts. A hit is a Decode
// served from a memoized entry; a miss ran the real decoder.
func (p *Plane) Stats() (hits, misses uint64) {
	return p.sharedHits.Load() + p.hits, p.sharedMisses.Load() + p.misses
}
