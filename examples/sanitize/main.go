// Sanitizer example (the paper's §4.4 application): take a binary with a
// stack-buffer overflow, retrofit the SURI-based binary-only address
// sanitizer, and watch it catch the bug — without source code, symbols,
// or recompilation.
//
// Run with: go run ./examples/sanitize
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/emu"
	"repro/internal/mini"
	"repro/internal/sanitizer"
)

func main() {
	// victim() writes buf[p0]; main calls it once in bounds and once
	// nine elements past an eight-element array — deep enough to reach
	// the saved frame pointer.
	mod := &mini.Module{
		Name: "overflow",
		Funcs: []*mini.Func{
			{
				Name: "victim", NParams: 1,
				Arrays: []mini.LocalArray{{Name: "buf", Elem: 8, Count: 8}},
				Body: []mini.Stmt{
					mini.StoreL{Arr: "buf", Idx: mini.Var("p0"), E: mini.Const(0x41)},
					mini.Return{E: mini.Const(0)},
				},
			},
			{Name: "main", Body: []mini.Stmt{
				mini.ExprStmt{E: mini.Call{Name: "victim", Args: []mini.Expr{mini.Const(3)}}},
				mini.Print{E: mini.Const(1)}, // survives the benign call
				mini.ExprStmt{E: mini.Call{Name: "victim", Args: []mini.Expr{mini.ReadInput{}}}},
				mini.Print{E: mini.Const(2)},
			}},
		},
	}
	bin, err := cc.Compile(mod, cc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	san, err := sanitizer.Rewrite(bin, sanitizer.Ours)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sanitized binary: %d -> %d bytes\n", len(bin), len(san))

	// Benign input: index 2. The sanitized binary behaves normally.
	good := input(2)
	res, err := emu.Run(san, emu.Options{Input: good, Shadow: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benign run:   stdout %q, exit %d\n", res.Stdout, res.Exit)

	// Triggering input: index 9 — past the array, into the saved RBP.
	bad := input(9)
	res, err = emu.Run(san, emu.Options{Input: bad, Shadow: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overflow run: stdout %q, stderr %q, exit %d\n", res.Stdout, res.Stderr, res.Exit)
	if res.Exit == 134 {
		fmt.Println("ok: out-of-bounds write detected by the binary-only sanitizer")
	} else {
		log.Fatal("overflow was not detected")
	}

	// The unsanitized binary silently corrupts its frame on the same
	// input (or trips CET when the smashed frame unwinds).
	res, err = emu.Run(bin, emu.Options{Input: bad})
	fmt.Printf("unsanitized overflow run: exit %d, err: %v\n", resExit(res), err)
}

func input(idx int64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(idx) >> (8 * i))
	}
	return b
}

func resExit(r *emu.Result) int {
	if r == nil {
		return -1
	}
	return r.Exit
}
