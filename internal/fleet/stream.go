package fleet

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
)

// lineWriter serializes NDJSON result lines from concurrent batch jobs
// onto one response stream, flushing after every line so the client
// sees each result the moment it exists.
type lineWriter struct {
	mu     sync.Mutex
	enc    *json.Encoder
	flush  http.Flusher
	ok     atomic.Int64
	failed atomic.Int64
}

func (l *lineWriter) write(v any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.enc.Encode(v)
	if l.flush != nil {
		l.flush.Flush()
	}
}

func (l *lineWriter) addOK()     { l.ok.Add(1) }
func (l *lineWriter) addFailed() { l.failed.Add(1) }

func (l *lineWriter) totals() (ok, failed int64) {
	return l.ok.Load(), l.failed.Load()
}

// waitGroup aliases sync.WaitGroup (keeps serve.go's imports flat).
type waitGroup = sync.WaitGroup

// newLineScanner builds a scanner whose line budget matches the batch
// body limit: one NDJSON job line carries a base64 binary, so the
// default 64 KiB token cap would reject any real program.
func newLineScanner(r io.Reader, maxLine int) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	if maxLine < 1<<16 {
		maxLine = 1 << 16
	}
	sc.Buffer(make([]byte, 64<<10), maxLine)
	return sc
}
