// Package instr is SURI's composable binary-instrumentation layer: a
// pass framework over the S' entry stream (§3.1 step 4, "users can
// modify S' at this stage") replacing ad-hoc core.Instrumenter hooks
// with reusable, composable passes.
//
// A Pass visits well-defined insertion points — function entry (the
// endbr64 landing pad), basic-block entry, before an indirect
// call/jmp, before ret, plus the prologue/epilogue/memory-access
// patterns the sanitizer uses — and returns entries to splice before
// or after each anchor. The framework owns the invariants that make
// naive S' editing unsound:
//
//   - CET/IBT: nothing may sit between an indirect-branch target label
//     and its endbr64, so before-insertions on an endbr64 anchor are
//     slid to just after it.
//   - Labels: an anchor's labels move onto the first inserted entry so
//     branches into the block execute the instrumentation.
//   - Composition: every pass sees the original site census, never
//     another pass's insertions, so composition is deterministic and
//     order-independent in what it observes (inserted code runs in
//     pass order at shared anchors).
//
// Passes leave runtime artifacts in a payload data region: Context
// Alloc claims RIP-addressable zero-initialized slices that the
// emitter appends as the writable .suri.instr section. Because the
// region is separate from program state and differential validation
// compares only stdout and exit status, instrumented binaries still
// pass core.RewriteValidated.
//
// Register/flag discipline: inserted code must preserve every register
// and the flags at the anchor. SaveRegs/RestoreRegs spill registers to
// per-pass payload slots with plain MOVs — deliberately not push/pop,
// which would move RSP and corrupt RSP-relative operands (including
// the [RSP] return-address reads the shadow stack needs) and the red
// zone. The emulated ISA has no PUSHFQ/LAHF, so the standard passes
// are written flag-transparently: only MOV and LEA (LEA arithmetic for
// increments), with CMP/JCC used solely at flag-dead sites (before
// ret, where the SysV ABI makes flags dead).
package instr

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/harden"
	"repro/internal/obs"
	"repro/internal/serialize"
	"repro/internal/x86"
)

// Point is a bitmask of insertion points a site offers.
type Point uint8

// Insertion points.
const (
	// FuncEntry is a function entry: a labeled endbr64 landing pad.
	// Before-insertions here are slid after the endbr64 (CET rule).
	FuncEntry Point = 1 << iota

	// BlockEntry is a basic-block entry: the labeled first instruction
	// of a serialized block.
	BlockEntry

	// BeforeIndirect is an indirect call or jump (register or memory
	// target). Insertions run with the target operand still live.
	BeforeIndirect

	// BeforeRet is a ret instruction. Flags are dead here (SysV ABI),
	// so CMP/JCC sequences are safe.
	BeforeRet

	// Prologue is the instruction completing a frame setup
	// (endbr64; push rbp; mov rbp,rsp; sub rsp,N — the sub).
	Prologue

	// Epilogue is the instruction starting a frame teardown
	// (mov rsp,rbp; pop rbp; ret — the mov).
	Epilogue

	// MemAccess is any instruction with an explicit memory operand
	// (Site.Mem); passes apply their own filters.
	MemAccess
)

// Site is one instrumentable entry in the input stream. Ordinals are
// dense per-point indices (Block counts labeled entries, Func labeled
// endbr64s, and so on); -1 means the point is absent at this site.
type Site struct {
	// Index is the entry's position in the input stream.
	Index int

	// Entry points at the anchor entry (read-only).
	Entry *serialize.Entry

	// Points is the set of insertion points this site offers.
	Points Point

	// Block, Func, Indirect, Ret are per-point ordinals (-1 if absent).
	Block, Func, Indirect, Ret int

	// Mem is the memory operand when Points has MemAccess.
	Mem x86.Mem
}

// Pass is one instrumentation transform. Standard passes are stateless
// values (per-run state lives in the Context), so one Pass value is
// safe across concurrent Apply calls.
type Pass interface {
	// Name is the pass's registry name; it namespaces payload symbols
	// and labels, so it must be unique within one Apply.
	Name() string

	// Setup runs once before visiting, typically claiming payload
	// regions sized from the Context census.
	Setup(ctx *Context) error

	// Visit returns entries to splice before and after the site's
	// anchor. Returned entries are marked synthesized by the framework;
	// they must preserve all registers and flags (see package doc).
	Visit(ctx *Context, s Site) (before, after []serialize.Entry)

	// Epilogue returns entries appended after the whole stream (shared
	// routines such as failure reporters). May be nil.
	Epilogue(ctx *Context) []serialize.Entry
}

// Fingerprinter is an optional Pass refinement: a stable identity
// string covering the pass's name, configuration, and codegen version.
// The farm cache keys instrumented artifacts on it; a pass list where
// every pass implements Fingerprinter is cacheable.
type Fingerprinter interface {
	Fingerprint() string
}

// Context is a pass's per-run view: the site census plus payload and
// label allocators. One Context per pass per Apply.
type Context struct {
	// Entries is the input stream (read-only).
	Entries []serialize.Entry

	// Sites lists every instrumentable site, in stream order.
	Sites []Site

	// Blocks, Funcs, Indirects, Rets are the census totals, available
	// to Setup for sizing payload regions.
	Blocks, Funcs, Indirects, Rets int

	pass         string
	payload      []asm.Item
	payloadBytes int
	labelSeq     int
	spill        map[x86.Reg]string
}

// Sym returns the payload symbol name for a region the pass allocates
// (or will allocate) with Alloc: "instr$<pass>$<name>". Deterministic,
// so stateless passes can recompute it in Visit.
func (c *Context) Sym(name string) string {
	return "instr$" + c.pass + "$" + name
}

// Alloc claims size zero-initialized bytes in the payload region,
// aligned to align, and returns the region's symbol. The emitter
// places the payload as the writable .suri.instr section, so inserted
// code addresses it RIP-relatively (PIE-safe) and runs leave it
// readable in the artifact and in emulator memory (surirun -cov).
func (c *Context) Alloc(name string, size, align int) string {
	sym := c.Sym(name)
	if size < 1 {
		size = 1
	}
	if align > 1 {
		c.payload = append(c.payload, asm.AlignTo{N: uint64(align)})
	}
	c.payload = append(c.payload, asm.Label{Name: sym}, asm.Space{N: uint64(size)})
	c.payloadBytes += size
	return sym
}

// Label returns a fresh local label unique within the pass and run.
func (c *Context) Label(prefix string) string {
	c.labelSeq++
	return fmt.Sprintf(".Linstr_%s_%s%d", c.pass, prefix, c.labelSeq)
}

// SaveRegs spills the registers to dedicated payload slots with plain
// RIP-relative MOV stores. RSP and flags are untouched, so every
// anchor operand (including RSP-relative ones) stays valid.
func (c *Context) SaveRegs(regs ...x86.Reg) []serialize.Entry {
	out := make([]serialize.Entry, 0, len(regs))
	for _, r := range regs {
		out = append(out, RipStore(c.spillSlot(r), r))
	}
	return out
}

// RestoreRegs reloads registers spilled by SaveRegs.
func (c *Context) RestoreRegs(regs ...x86.Reg) []serialize.Entry {
	out := make([]serialize.Entry, 0, len(regs))
	for _, r := range regs {
		out = append(out, RipLoad(r, c.spillSlot(r)))
	}
	return out
}

func (c *Context) spillSlot(r x86.Reg) string {
	if c.spill == nil {
		c.spill = make(map[x86.Reg]string)
	}
	if s, ok := c.spill[r]; ok {
		return s
	}
	s := c.Alloc("spill_"+r.Name(8), 8, 8)
	c.spill[r] = s
	return s
}

// RipLoad builds "mov dst, [RIP+sym]" (no flags touched).
func RipLoad(dst x86.Reg, sym string) serialize.Entry {
	return serialize.Entry{
		Inst:   x86.Inst{Op: x86.MOV, W: 8, Dst: dst, Src: ripMem()},
		Target: sym, Synth: true,
	}
}

// RipStore builds "mov [RIP+sym], src" (no flags touched).
func RipStore(sym string, src x86.Reg) serialize.Entry {
	return serialize.Entry{
		Inst:   x86.Inst{Op: x86.MOV, W: 8, Dst: ripMem(), Src: src},
		Target: sym, Synth: true,
	}
}

// RipLea builds "lea dst, [RIP+sym]" (no flags touched).
func RipLea(dst x86.Reg, sym string) serialize.Entry {
	return serialize.Entry{
		Inst:   x86.Inst{Op: x86.LEA, W: 8, Dst: dst, Src: ripMem()},
		Target: sym, Synth: true,
	}
}

func ripMem() x86.Mem {
	return x86.Mem{Base: x86.NoReg, Index: x86.NoReg, Rip: true}
}

// Options configure Apply. Budget/Cancel integrate with the harden
// layer; Obs records one child span per pass.
type Options struct {
	Budget harden.Budget
	Cancel <-chan struct{}
	Obs    *obs.Collector
}

// Result is a completed instrumentation run.
type Result struct {
	// Entries is the instrumented stream.
	Entries []serialize.Entry

	// Inserted marks, parallel to Entries, which entries the passes
	// inserted (false for original and pre-existing synthesized ones).
	Inserted []bool

	// Payload is the pass data region as assembler items for the
	// emitter's .suri.instr section; PayloadBytes is its total size.
	Payload      []asm.Item
	PayloadBytes int

	// Added counts inserted entries; Passes counts passes run.
	Added  int
	Passes int
}

// Apply runs the passes over the stream and merges their insertions.
// Each pass sees the same census of the input stream — never another
// pass's output — so composition is deterministic; at shared anchors
// inserted code executes in pass order.
func Apply(entries []serialize.Entry, passes []Pass, opts Options) (*Result, error) {
	if len(passes) == 0 {
		return &Result{Entries: entries, Inserted: make([]bool, len(entries))}, nil
	}
	sites, totals := census(entries)

	type splice struct{ before, after []serialize.Entry }
	splices := make([]splice, len(entries))
	var tail []serialize.Entry
	res := &Result{Passes: len(passes)}
	tr := opts.Obs.Trace()

	seen := make(map[string]bool, len(passes))
	for _, p := range passes {
		if canceled(opts.Cancel) {
			return nil, harden.ErrCanceled
		}
		if err := harden.Inject(harden.FPInstrPass); err != nil {
			return nil, fmt.Errorf("instr: pass %s: %w", p.Name(), err)
		}
		if seen[p.Name()] {
			return nil, fmt.Errorf("instr: duplicate pass %q", p.Name())
		}
		seen[p.Name()] = true

		span := tr.Start("pass." + p.Name())
		ctx := &Context{
			Entries: entries, Sites: sites,
			Blocks: totals.blocks, Funcs: totals.funcs,
			Indirects: totals.indirects, Rets: totals.rets,
			pass: p.Name(),
		}
		if err := p.Setup(ctx); err != nil {
			span.End()
			return nil, fmt.Errorf("instr: pass %s: setup: %w", p.Name(), err)
		}
		added := 0
		for i := range ctx.Sites {
			before, after := p.Visit(ctx, ctx.Sites[i])
			markSynth(before)
			markSynth(after)
			sp := &splices[ctx.Sites[i].Index]
			sp.before = append(sp.before, before...)
			sp.after = append(sp.after, after...)
			added += len(before) + len(after)
		}
		ep := p.Epilogue(ctx)
		markSynth(ep)
		tail = append(tail, ep...)
		added += len(ep)

		res.Added += added
		res.Payload = append(res.Payload, ctx.payload...)
		res.PayloadBytes += ctx.payloadBytes
		span.SetInt("inserted", int64(added))
		span.SetInt("payload_bytes", int64(ctx.payloadBytes))
		span.End()
	}

	out := make([]serialize.Entry, 0, len(entries)+res.Added)
	marks := make([]bool, 0, len(entries)+res.Added)
	for i := range entries {
		e := entries[i]
		before, after := splices[i].before, splices[i].after
		if len(before) > 0 && !e.Synth && e.Inst.Op == x86.ENDBR64 {
			// CET/IBT: an indirect-branch target label must be followed
			// immediately by its endbr64; slide before-insertions after it.
			after = append(append([]serialize.Entry{}, before...), after...)
			before = nil
		}
		if len(before) > 0 && len(e.Labels) > 0 {
			// Branches into the block must execute the instrumentation:
			// the anchor's labels move onto the first inserted entry.
			before[0].Labels = append(append([]string{}, e.Labels...), before[0].Labels...)
			e.Labels = nil
		}
		for _, b := range before {
			out = append(out, b)
			marks = append(marks, true)
		}
		out = append(out, e)
		marks = append(marks, false)
		for _, a := range after {
			out = append(out, a)
			marks = append(marks, true)
		}
	}
	for _, t := range tail {
		out = append(out, t)
		marks = append(marks, true)
	}

	budget := opts.Budget.WithDefaults()
	if int64(len(out)) > budget.TotalInsts {
		return nil, &harden.BudgetExceeded{Resource: "instr.entries", Limit: budget.TotalInsts}
	}
	res.Entries = out
	res.Inserted = marks
	return res, nil
}

type totals struct {
	blocks, funcs, indirects, rets int
}

// census scans the stream once and classifies every non-synthesized
// entry. Sites never cover synthesized entries (serializer traps,
// earlier raw-hook insertions), so passes anchor only to real code.
func census(entries []serialize.Entry) ([]Site, totals) {
	var sites []Site
	var t totals
	for i := range entries {
		e := &entries[i]
		if e.Synth {
			continue
		}
		s := Site{Index: i, Entry: e, Block: -1, Func: -1, Indirect: -1, Ret: -1}
		if len(e.Labels) > 0 {
			s.Points |= BlockEntry
			s.Block = t.blocks
			t.blocks++
			if e.Inst.Op == x86.ENDBR64 {
				s.Points |= FuncEntry
				s.Func = t.funcs
				t.funcs++
			}
		}
		if e.Inst.IsIndirectBranch() {
			s.Points |= BeforeIndirect
			s.Indirect = t.indirects
			t.indirects++
		}
		if e.Inst.Op == x86.RET {
			s.Points |= BeforeRet
			s.Ret = t.rets
			t.rets++
		}
		if isProloguePoint(entries, i) {
			s.Points |= Prologue
		}
		if isEpiloguePoint(entries, i) {
			s.Points |= Epilogue
		}
		if m, ok := e.Inst.MemArg(); ok {
			s.Points |= MemAccess
			s.Mem = m
		}
		if s.Points != 0 {
			sites = append(sites, s)
		}
	}
	return sites, t
}

// isProloguePoint reports whether entries[i] is the "sub rsp, N"
// completing a prologue (endbr64; push rbp; mov rbp,rsp; sub rsp,N).
func isProloguePoint(entries []serialize.Entry, i int) bool {
	e := entries[i]
	if e.Synth || e.Inst.Op != x86.SUB {
		return false
	}
	d, ok := e.Inst.Dst.(x86.Reg)
	if !ok || d != x86.RSP {
		return false
	}
	if _, isImm := e.Inst.Src.(x86.Imm); !isImm {
		return false
	}
	// Preceding instruction should be "mov rbp, rsp".
	for j := i - 1; j >= 0 && j >= i-2; j-- {
		p := entries[j]
		if p.Synth {
			continue
		}
		if p.Inst.Op == x86.MOV {
			if pd, ok := p.Inst.Dst.(x86.Reg); ok && pd == x86.RBP {
				if ps, ok := p.Inst.Src.(x86.Reg); ok && ps == x86.RSP {
					return true
				}
			}
		}
		return false
	}
	return false
}

// isEpiloguePoint reports whether entries[i] starts
// "mov rsp, rbp; pop rbp; ret".
func isEpiloguePoint(entries []serialize.Entry, i int) bool {
	e := entries[i]
	if e.Synth || e.Inst.Op != x86.MOV {
		return false
	}
	d, dok := e.Inst.Dst.(x86.Reg)
	s, sok := e.Inst.Src.(x86.Reg)
	if !dok || !sok || d != x86.RSP || s != x86.RBP {
		return false
	}
	if i+2 >= len(entries) {
		return false
	}
	return entries[i+1].Inst.Op == x86.POP && entries[i+2].Inst.Op == x86.RET
}

func markSynth(es []serialize.Entry) {
	for i := range es {
		es[i].Synth = true
	}
}

func canceled(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}
