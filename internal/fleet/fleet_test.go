package fleet_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// fakeWorker is a surid stand-in: it speaks just enough of the worker
// protocol (POST /rewrite, GET /healthz) for coordinator tests to run
// in microseconds instead of pipeline-seconds. The rewritten artifact
// is "rw:"+input, so routing and caching are byte-checkable.
type fakeWorker struct {
	srv      *httptest.Server
	requests atomic.Int64
	canceled atomic.Int64 // gated rewrites abandoned by client cancel
	health   atomic.Int32 // 0 ok, 1 draining, 2 broken
	gate     chan struct{}
	pushGate chan struct{} // blocks PUT /cache while set

	mu        sync.Mutex
	lastRID   string
	lastQuery url.Values
	pushes    []string // replica keys received via PUT /cache
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /rewrite", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		fw.mu.Lock()
		fw.lastRID = r.Header.Get(farm.RequestIDHeader)
		fw.lastQuery = r.URL.Query()
		fw.mu.Unlock()
		fw.requests.Add(1)
		if fw.gate != nil {
			select {
			case <-fw.gate:
			case <-r.Context().Done():
				// The coordinator gave up on this arm (hedge loser,
				// client timeout): the stand-in records the abandonment
				// the way a real pipeline would observe its Cancel.
				fw.canceled.Add(1)
				return
			}
		}
		resp := farm.RewriteResponse{
			Stats:  core.Stats{Blocks: 1, RewrittenBytes: len(body)},
			Binary: append([]byte("rw:"), body...),
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("PUT /cache", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		if fw.pushGate != nil {
			<-fw.pushGate
		}
		fw.mu.Lock()
		fw.pushes = append(fw.pushes, r.URL.Query().Get("key"))
		fw.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		switch fw.health.Load() {
		case 0:
			w.WriteHeader(http.StatusOK)
		case 1:
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusInternalServerError)
		}
	})
	fw.srv = httptest.NewServer(mux)
	t.Cleanup(fw.srv.Close)
	return fw
}

func (fw *fakeWorker) last() (string, url.Values) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.lastRID, fw.lastQuery
}

func (fw *fakeWorker) pushCount() int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return len(fw.pushes)
}

func newCoordinator(t *testing.T, opts fleet.Options) *fleet.Coordinator {
	t.Helper()
	if opts.Obs == nil {
		opts.Obs = obs.New().EnableFlight(256)
	}
	c, err := fleet.NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func serveCoordinator(t *testing.T, c *fleet.Coordinator) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(c)
	t.Cleanup(srv.Close)
	return srv
}

func postFleet(t *testing.T, base string, path string, bin []byte) (*http.Response, farm.RewriteResponse) {
	t.Helper()
	resp, err := http.Post(base+path, "application/octet-stream", bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out farm.RewriteResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// TestCoordinatorRoutesAndCaches: the first rewrite forwards to the
// owning worker; the second is served from the coordinator's memory
// tier without touching any worker; a fresh coordinator over the same
// cache dir serves it from disk.
func TestCoordinatorRoutesAndCaches(t *testing.T) {
	fw := newFakeWorker(t)
	dir := t.TempDir()
	c := newCoordinator(t, fleet.Options{Workers: []string{fw.srv.URL}, CacheDir: dir})
	srv := serveCoordinator(t, c)
	bin := []byte("prog-a")

	resp, out := postFleet(t, srv.URL, "/rewrite", bin)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.CacheHit || out.Source != "worker" || out.Worker != "w0" {
		t.Fatalf("first rewrite: hit=%v source=%q worker=%q, want miss via w0", out.CacheHit, out.Source, out.Worker)
	}
	if !bytes.Equal(out.Binary, append([]byte("rw:"), bin...)) {
		t.Fatalf("artifact %q", out.Binary)
	}

	_, out = postFleet(t, srv.URL, "/rewrite", bin)
	if !out.CacheHit || out.Source != "coordinator-memory" {
		t.Fatalf("second rewrite: hit=%v source=%q, want coordinator-memory", out.CacheHit, out.Source)
	}
	if fw.requests.Load() != 1 {
		t.Fatalf("worker saw %d requests, want 1", fw.requests.Load())
	}

	// A new coordinator node sharing the disk tier starts warm.
	c2 := newCoordinator(t, fleet.Options{Workers: []string{fw.srv.URL}, CacheDir: dir})
	srv2 := serveCoordinator(t, c2)
	_, out = postFleet(t, srv2.URL, "/rewrite", bin)
	if !out.CacheHit || out.Source != "coordinator-disk" {
		t.Fatalf("fresh node: hit=%v source=%q, want coordinator-disk", out.CacheHit, out.Source)
	}
	if fw.requests.Load() != 1 {
		t.Fatalf("disk tier did not absorb the request: worker saw %d", fw.requests.Load())
	}
}

// TestCoordinatorCoalesces: N concurrent identical rewrites cause
// exactly one forward — the leader executes, everyone else coalesces
// onto it or hits the cache it filled, and all N artifacts agree.
func TestCoordinatorCoalesces(t *testing.T) {
	fw := newFakeWorker(t)
	fw.gate = make(chan struct{})
	c := newCoordinator(t, fleet.Options{Workers: []string{fw.srv.URL}})
	srv := serveCoordinator(t, c)
	bin := []byte("prog-coalesce")

	const n = 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	var bins [][]byte
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, out := postFleet(t, srv.URL, "/rewrite", bin)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			mu.Lock()
			bins = append(bins, out.Binary)
			mu.Unlock()
		}()
	}
	// Hold the leader inside the worker until it has arrived, then let
	// the whole batch resolve; late goroutines become cache hits.
	waitFor(t, func() bool { return fw.requests.Load() == 1 })
	close(fw.gate)
	wg.Wait()

	if got := fw.requests.Load(); got != 1 {
		t.Fatalf("worker executions = %d, want exactly 1", got)
	}
	reg := c.Obs().Metrics()
	if got := reg.Counter("fleet.executions").Value(); got != 1 {
		t.Fatalf("fleet.executions = %d, want 1", got)
	}
	if got := reg.Counter("fleet.cache_misses").Value(); got != 1 {
		t.Fatalf("fleet.cache_misses = %d, want 1", got)
	}
	co := reg.Counter("fleet.coalesced").Value()
	hits := reg.Counter("fleet.cache_hits").Value()
	if co+hits != n-1 {
		t.Fatalf("coalesced %d + hits %d = %d, want %d", co, hits, co+hits, n-1)
	}
	if len(bins) != n {
		t.Fatalf("results = %d, want %d", len(bins), n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bins[0], bins[i]) {
			t.Fatalf("artifact %d differs", i)
		}
	}
}

// TestDegradeBeforeShed: under pressure a ?validate=1 request is served
// as a plain rewrite with verdict "degraded" (never queued behind
// validation it can't afford), and only past MaxInflight does the
// coordinator shed with a computed Retry-After.
func TestDegradeBeforeShed(t *testing.T) {
	fw := newFakeWorker(t)
	fw.gate = make(chan struct{})
	c := newCoordinator(t, fleet.Options{
		Workers: []string{fw.srv.URL}, MaxInflight: 1, DegradeAt: -1,
	})
	srv := serveCoordinator(t, c)

	type result struct {
		resp *http.Response
		out  farm.RewriteResponse
	}
	first := make(chan result, 1)
	go func() {
		resp, out := postFleet(t, srv.URL, "/rewrite?validate=1", []byte("prog-v"))
		first <- result{resp, out}
	}()
	// The degraded leader is parked inside the worker: the one inflight
	// slot is taken, so the next request must shed.
	waitFor(t, func() bool { return fw.requests.Load() == 1 })

	resp, err := http.Post(srv.URL+"/rewrite", "application/octet-stream", bytes.NewReader([]byte("prog-other")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After")
	}

	close(fw.gate)
	r := <-first
	if r.resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request status = %d, want 200", r.resp.StatusCode)
	}
	if r.out.Verdict != string(core.VerdictDegraded) || r.out.Reason == "" {
		t.Fatalf("verdict %q reason %q, want degraded with reason", r.out.Verdict, r.out.Reason)
	}
	if _, q := fw.last(); q.Get("validate") == "1" {
		t.Fatal("degraded job still asked the worker to validate")
	}
	reg := c.Obs().Metrics()
	if reg.Counter("fleet.degraded").Value() != 1 || reg.Counter("fleet.shed").Value() != 1 {
		t.Fatalf("degraded=%d shed=%d, want 1 and 1",
			reg.Counter("fleet.degraded").Value(), reg.Counter("fleet.shed").Value())
	}
}

// binOwnedBy crafts request bodies whose content address lands on each
// worker of a 2-node ring, so failover tests can route deterministically.
func binOwnedBy(t *testing.T, names []string) map[string][]byte {
	t.Helper()
	ring := fleet.BuildRing(names, 0)
	out := map[string][]byte{}
	for i := 0; len(out) < len(names) && i < 10000; i++ {
		bin := []byte(fmt.Sprintf("prog-owned-%d", i))
		k, ok := farm.Fingerprint(bin, core.Options{})
		if !ok {
			t.Fatal("uncacheable")
		}
		owner := ring.Owner(fleet.HashKey(k))
		if _, dup := out[owner]; !dup {
			out[owner] = bin
		}
	}
	if len(out) != len(names) {
		t.Fatalf("could not find keys for all of %v", names)
	}
	return out
}

// TestWorkerDeathFailover: a request whose owner is dead fails over to
// the next worker on the ring, the dead worker leaves the membership,
// and the health sweep keeps it out until it answers again.
func TestWorkerDeathFailover(t *testing.T) {
	fw0 := newFakeWorker(t)
	fw1 := newFakeWorker(t)
	c := newCoordinator(t, fleet.Options{Workers: []string{fw0.srv.URL, fw1.srv.URL}})
	srv := serveCoordinator(t, c)
	owned := binOwnedBy(t, []string{"w0", "w1"})

	// Sanity: each body routes to its computed owner while both live.
	_, out := postFleet(t, srv.URL, "/rewrite", owned["w1"])
	if out.Worker != "w1" {
		t.Fatalf("w1-owned request served by %q", out.Worker)
	}

	fw0.srv.Close()
	resp, out := postFleet(t, srv.URL, "/rewrite", owned["w0"])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover status = %d, want 200", resp.StatusCode)
	}
	if out.Worker != "w1" {
		t.Fatalf("failover served by %q, want w1", out.Worker)
	}
	reg := c.Obs().Metrics()
	if reg.Counter("fleet.rehash").Value() < 1 {
		t.Fatal("failover did not count a rehash")
	}

	var health fleet.FleetHealth
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(hr.Body).Decode(&health)
	hr.Body.Close()
	if health.WorkersAlive != 1 || len(health.Workers) != 2 {
		t.Fatalf("health after death: alive=%d workers=%d, want 1 of 2", health.WorkersAlive, len(health.Workers))
	}
	for _, w := range health.Workers {
		if w.Name == "w0" && w.State != "dead" {
			t.Fatalf("w0 state %q, want dead", w.State)
		}
	}
	c.CheckHealth() // the sweep must agree, not resurrect it
	if reg.Gauge("fleet.workers_alive").Value() != 1 {
		t.Fatal("health sweep resurrected a dead worker")
	}
}

// TestRegistrationAndDrain: a fleet can start empty — workers join via
// /fleet/register — and a draining worker leaves the ring on the next
// sweep without being declared dead.
func TestRegistrationAndDrain(t *testing.T) {
	c := newCoordinator(t, fleet.Options{})
	srv := serveCoordinator(t, c)

	resp, err := http.Post(srv.URL+"/rewrite", "application/octet-stream", strings.NewReader("prog"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty fleet status = %d, want 503", resp.StatusCode)
	}

	fw := newFakeWorker(t)
	if err := fleet.Register(srv.URL, fw.srv.URL, 3, 10*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	r2, out := postFleet(t, srv.URL, "/rewrite", []byte("prog"))
	if r2.StatusCode != http.StatusOK || out.Worker != "w0" {
		t.Fatalf("after register: status %d worker %q", r2.StatusCode, out.Worker)
	}

	fw.health.Store(1) // draining
	c.CheckHealth()
	reg := c.Obs().Metrics()
	if reg.Gauge("fleet.workers_alive").Value() != 0 {
		t.Fatal("draining worker still routable")
	}
	fw.health.Store(0)
	c.CheckHealth()
	if reg.Gauge("fleet.workers_alive").Value() != 1 {
		t.Fatal("recovered worker not restored")
	}
}

// TestRequestIDPropagation: the coordinator forwards the client's
// correlation ID to the worker and echoes it on its own response, so
// one ID follows the request across nodes.
func TestRequestIDPropagation(t *testing.T) {
	fw := newFakeWorker(t)
	c := newCoordinator(t, fleet.Options{Workers: []string{fw.srv.URL}})
	srv := serveCoordinator(t, c)

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/rewrite", strings.NewReader("prog-rid"))
	req.Header.Set(farm.RequestIDHeader, "xcorr-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(farm.RequestIDHeader); got != "xcorr-42" {
		t.Fatalf("response rid %q, want xcorr-42", got)
	}
	rid, _ := fw.last()
	if rid != "xcorr-42" {
		t.Fatalf("worker saw rid %q, want xcorr-42", rid)
	}

	// Without a client ID the coordinator mints an f-prefixed one and
	// still propagates it downstream.
	resp2, _ := postFleet(t, srv.URL, "/rewrite", []byte("prog-rid-2"))
	minted := resp2.Header.Get(farm.RequestIDHeader)
	rid2, _ := fw.last()
	if minted == "" || minted[0] != 'f' || rid2 != minted {
		t.Fatalf("minted rid %q, worker saw %q", minted, rid2)
	}
}

// TestBatchStream: /batch streams one NDJSON result per job plus a
// summary line; malformed lines fail individually without sinking the
// batch, and degraded jobs report their verdict in-stream.
func TestBatchStream(t *testing.T) {
	fw := newFakeWorker(t)
	c := newCoordinator(t, fleet.Options{Workers: []string{fw.srv.URL}, DegradeAt: -1})
	srv := serveCoordinator(t, c)

	var in bytes.Buffer
	writeJob := func(id string, bin []byte, params string) {
		json.NewEncoder(&in).Encode(fleet.BatchJob{ID: id, Binary: bin, Params: params})
	}
	writeJob("a", []byte("prog-1"), "")
	writeJob("b", []byte("prog-2"), "validate=1")
	in.WriteString("{\"id\":\"c\",\"params\":\"budget-insts=bogus\"}\n")

	resp, err := http.Post(srv.URL+"/batch", "application/x-ndjson", &in)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	byID := map[string]fleet.BatchResult{}
	var summary *fleet.BatchResult
	dec := json.NewDecoder(resp.Body)
	for {
		var line fleet.BatchResult
		if err := dec.Decode(&line); err != nil {
			break
		}
		if line.Summary {
			s := line
			summary = &s
			continue
		}
		byID[line.ID] = line
	}
	if summary == nil {
		t.Fatal("no summary line")
	}
	if summary.Jobs != 3 || summary.OK != 2 || summary.Failed != 1 {
		t.Fatalf("summary %+v, want jobs 3 ok 2 failed 1", *summary)
	}
	if r := byID["a"]; r.Status != http.StatusOK || r.Response == nil || !bytes.Equal(r.Response.Binary, []byte("rw:prog-1")) {
		t.Fatalf("job a: %+v", r)
	}
	if r := byID["b"]; r.Response == nil || r.Response.Verdict != string(core.VerdictDegraded) {
		t.Fatalf("job b not degraded: %+v", r)
	}
	if r := byID["c"]; r.Status != http.StatusBadRequest || r.Error == "" {
		t.Fatalf("job c: %+v", r)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
