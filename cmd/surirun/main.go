// Command surirun executes an ELF binary in the repository's x86-64
// emulator, with CET enforcement when the binary declares IBT+SHSTK.
//
// Usage:
//
//	surirun [-in file] [-bias 0x10000000] [-steps] [-no-cet] [-profile] [-profile-json]
//	        [-heat-json file] [-cov] [-cov-out file]
//	        [-engine auto|interpreter|tiered] [-seed-heat file] [-tier-stats]
//	        prog.bin
//
// -engine selects the execution engine: auto (the default) runs the
// tiered superblock engine with interpreter fallback, interpreter
// forces the baseline. -seed-heat feeds a prior run's -heat-json export
// back in so its hot blocks translate on first encounter; -tier-stats
// prints the tiered engine's translation/exit counters to stderr.
//
// -profile prints an execution profile to stderr (opcode histogram,
// CET event counters, block heat, syscall summary); -profile-json
// prints the same profile as JSON (also to stderr, keeping stdout for
// the emulated program's output); -heat-json writes the block-heat map
// alone to a file ("-" for stderr) under the versioned suri.heat.v1
// schema — the stable feed for hot-block tooling.
//
// -cov captures the binary's instrumentation payload (the .suri.instr
// section a `suri -instrument ...` rewrite appends — coverage bitmaps,
// block counters, call logs) after the run and prints a summary to
// stderr; -cov-out additionally dumps the raw payload bytes to a file
// (implies -cov). Both fail if the binary carries no .suri.instr
// section. The payload reflects the program state at exit, whether the
// run succeeded or died.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/elfx"
	"repro/internal/emu"

	// Link the tiered superblock engine so -engine auto/tiered resolves.
	_ "repro/internal/emu/tiered"
)

func main() {
	inFile := flag.String("in", "", "stdin bytes (file path)")
	bias := flag.Uint64("bias", 0, "PIE load bias (0 = default)")
	steps := flag.Bool("steps", false, "print retired instruction count")
	noCET := flag.Bool("no-cet", false, "disable CET enforcement")
	profile := flag.Bool("profile", false, "print execution profile to stderr")
	profileJSON := flag.Bool("profile-json", false, "print execution profile as JSON to stderr")
	heatJSON := flag.String("heat-json", "", "write the suri.heat.v1 block-heat export to this file (\"-\" = stderr)")
	cov := flag.Bool("cov", false, "capture the .suri.instr payload after the run; summary to stderr")
	covOut := flag.String("cov-out", "", "dump the captured .suri.instr payload bytes to this file (implies -cov)")
	engine := flag.String("engine", "auto", "execution engine: auto (tiered), interpreter, tiered")
	seedHeat := flag.String("seed-heat", "", "pre-translate hot blocks from this suri.heat.v1 file (a prior -heat-json export at the same bias)")
	tierStats := flag.Bool("tier-stats", false, "print tiered-engine counters to stderr after the run")
	flag.Parse()

	engineKind, err := emu.ParseEngine(*engine)
	fail(err)

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: surirun [flags] prog.bin")
		os.Exit(2)
	}
	bin, err := os.ReadFile(flag.Arg(0))
	fail(err)

	var input []byte
	if *inFile != "" {
		input, err = os.ReadFile(*inFile)
		fail(err)
	}

	opts := emu.Options{
		Bias: *bias, Input: input, Shadow: true, DisableCET: *noCET,
		Profile: *profile || *profileJSON || *heatJSON != "",
		Engine:  engineKind,
	}
	if *seedHeat != "" {
		data, rerr := os.ReadFile(*seedHeat)
		fail(rerr)
		opts.HeatSeed, rerr = emu.ParseHeatSeed(data)
		fail(rerr)
	}
	if *cov || *covOut != "" {
		opts.Capture = instrRange(bin)
	}

	res, err := emu.Run(bin, opts)
	if res != nil {
		os.Stdout.Write(res.Stdout)
		os.Stderr.Write(res.Stderr)
	}
	if *tierStats && res != nil {
		dumpTierStats(res.Tier)
	}
	if *cov || *covOut != "" {
		dumpPayload(res)
		if *covOut != "" && res != nil {
			fail(os.WriteFile(*covOut, res.Captured, 0o644))
		}
	}
	fail(err)
	if *steps {
		fmt.Fprintf(os.Stderr, "[%d instructions retired]\n", res.Steps)
	}
	if *profile {
		fmt.Fprint(os.Stderr, res.Prof.Text())
	}
	if *profileJSON {
		js, jerr := res.Prof.JSON()
		fail(jerr)
		fmt.Fprintln(os.Stderr, string(js))
	}
	if *heatJSON != "" {
		js, jerr := res.Prof.HeatJSON()
		fail(jerr)
		if *heatJSON == "-" {
			fmt.Fprintln(os.Stderr, string(js))
		} else {
			fail(os.WriteFile(*heatJSON, append(js, '\n'), 0o644))
		}
	}
	os.Exit(res.Exit)
}

// instrRange locates the .suri.instr payload section; its link-time
// address range is what the emulator captures at exit.
func instrRange(bin []byte) emu.Range {
	f, err := elfx.Read(bin)
	fail(err)
	for _, s := range f.Sections {
		if s.Name == ".suri.instr" {
			return emu.Range{Start: s.Addr, End: s.Addr + s.Size}
		}
	}
	fail(fmt.Errorf("%s has no .suri.instr section (rewrite it with suri -instrument first)", flag.Arg(0)))
	panic("unreachable")
}

// dumpTierStats summarizes the tiered engine's counters on stderr; an
// interpreted run (forced, or no tiered engine linked) says so.
func dumpTierStats(t *emu.TierStats) {
	if t == nil {
		fmt.Fprintln(os.Stderr, "[tier: interpreted run, no tiered-engine state]")
		return
	}
	fmt.Fprintf(os.Stderr,
		"[tier: %d translations (%d insts), %d block execs, %d tier steps, cache %d hit/%d miss, %d invalidations]\n",
		t.Translations, t.TransInsts, t.Blocks, t.TierSteps, t.CacheHits, t.CacheMisses, t.Invalidations)
	fmt.Fprintf(os.Stderr,
		"[tier exits: fall %d, branch %d, side %d, error %d, exit %d; guards: budget %d, cet %d]\n",
		t.ExitFall, t.ExitBranch, t.ExitSide, t.ExitError, t.ExitExit, t.GuardBudget, t.GuardCET)
}

// dumpPayload summarizes the captured payload on stderr.
func dumpPayload(res *emu.Result) {
	if res == nil {
		return
	}
	nz := 0
	for _, b := range res.Captured {
		if b != 0 {
			nz++
		}
	}
	fmt.Fprintf(os.Stderr, "[instr payload: %d bytes captured, %d non-zero]\n", len(res.Captured), nz)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "surirun:", err)
		os.Exit(1)
	}
}
