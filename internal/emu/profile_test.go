package emu

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/x86"
)

var updateProfile = flag.Bool("update-profile", false, "rewrite profile golden files")

// instOffsets encodes each instruction and returns its offset from the
// start of the sequence, so branch targets can be computed instead of
// hand-counted.
func instOffsets(t *testing.T, insts []x86.Inst) []int {
	t.Helper()
	offs := make([]int, len(insts))
	off := 0
	for i, in := range insts {
		offs[i] = off
		b, err := x86.Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		off += len(b)
	}
	return offs
}

// profiledMachine runs a small deterministic program under profiling:
// a call/ret pair under CET enforcement, one write syscall, and exit.
func profiledMachine(t *testing.T) *Machine {
	t.Helper()
	const base = 0x1000
	insts := []x86.Inst{
		{Op: x86.ENDBR64},
		{Op: x86.CALL, Src: x86.Rel(0)}, // patched below to target fn
		{Op: x86.MOV, W: 8, Dst: x86.RAX, Src: x86.Imm(1)},
		{Op: x86.MOV, W: 8, Dst: x86.RDI, Src: x86.Imm(1)},
		{Op: x86.MOV, W: 8, Dst: x86.RSI, Src: x86.Imm(base)}, // write the code bytes themselves
		{Op: x86.MOV, W: 8, Dst: x86.RDX, Src: x86.Imm(4)},
		{Op: x86.SYSCALL},
		{Op: x86.MOV, W: 8, Dst: x86.RAX, Src: x86.Imm(60)},
		{Op: x86.MOV, W: 8, Dst: x86.RDI, Src: x86.Imm(7)},
		{Op: x86.SYSCALL},
		{Op: x86.ENDBR64}, // fn:
		{Op: x86.RET},
	}
	offs := instOffsets(t, insts)
	insts[1].Src = x86.Rel(offs[10] - offs[2]) // call fn, rel to next inst
	m := buildMachine(t, base, insts)
	m.EnforceCET = true
	m.Prof = NewProfile()
	return m
}

func TestProfileCounts(t *testing.T) {
	m := profiledMachine(t)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	p := m.Prof
	if p.Retired() != m.Steps {
		t.Errorf("profile retired %d != machine steps %d", p.Retired(), m.Steps)
	}
	if got := p.Opcode[x86.MOV]; got != 6 {
		t.Errorf("mov count = %d, want 6", got)
	}
	if got := p.Opcode[x86.SYSCALL]; got != 2 {
		t.Errorf("syscall count = %d, want 2", got)
	}
	if p.ShadowPushes != 1 || p.ShadowPops != 1 {
		t.Errorf("shadow pushes/pops = %d/%d, want 1/1", p.ShadowPushes, p.ShadowPops)
	}
	// The direct call does not require endbr64; no indirect branch ran.
	if p.IBTChecks != 0 || p.NotrackBranches != 0 {
		t.Errorf("ibt/notrack = %d/%d, want 0/0", p.IBTChecks, p.NotrackBranches)
	}
	// Block leaders: entry, call target, return continuation.
	if len(p.Heat) != 3 {
		t.Errorf("heat has %d leaders, want 3: %v", len(p.Heat), p.Heat)
	}
	if len(p.Syscalls) != 2 {
		t.Fatalf("syscall log has %d events, want 2", len(p.Syscalls))
	}
	if p.Syscalls[0].Nr != sysWrite || p.Syscalls[0].Ret != 4 {
		t.Errorf("first syscall = %+v, want write ret 4", p.Syscalls[0])
	}
	if p.Syscalls[1].Nr != sysExit || p.Syscalls[1].Ret != 7 {
		t.Errorf("second syscall = %+v, want exit 7", p.Syscalls[1])
	}
}

func TestProfileIBTAndNotrack(t *testing.T) {
	const base = 0x1000
	// Tracked indirect jmp to an endbr64 landing pad, then a notrack
	// jmp to a target without endbr64 (legal under IBT).
	insts := []x86.Inst{
		{Op: x86.MOV, W: 8, Dst: x86.RAX, Src: x86.Imm(0)}, // patched: pad address
		{Op: x86.JMP, Src: x86.RAX},                        // tracked
		{Op: x86.UD2},                                      // skipped
		{Op: x86.ENDBR64},                                  // pad:
		{Op: x86.MOV, W: 8, Dst: x86.RBX, Src: x86.Imm(0)}, // patched: tail address
		{Op: x86.JMP, Src: x86.RBX, NoTrack: true},
		{Op: x86.UD2},                                       // skipped
		{Op: x86.MOV, W: 8, Dst: x86.RAX, Src: x86.Imm(60)}, // tail: no endbr64
		{Op: x86.MOV, W: 8, Dst: x86.RDI, Src: x86.Imm(0)},
		{Op: x86.SYSCALL},
	}
	offs := instOffsets(t, insts)
	insts[0].Src = x86.Imm(base + int64(offs[3])) // rax <- pad
	insts[4].Src = x86.Imm(base + int64(offs[7])) // rbx <- tail
	m := buildMachine(t, base, insts)
	m.EnforceCET = true
	m.Prof = NewProfile()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Prof.IBTChecks != 1 {
		t.Errorf("ibt checks = %d, want 1", m.Prof.IBTChecks)
	}
	if m.Prof.NotrackBranches != 1 {
		t.Errorf("notrack branches = %d, want 1", m.Prof.NotrackBranches)
	}
}

func runProfiled(t *testing.T) *Profile {
	t.Helper()
	m := profiledMachine(t)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m.Prof
}

func checkProfileGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateProfile {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-profile): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestProfileTextGolden(t *testing.T) {
	checkProfileGolden(t, "profile.txt", []byte(runProfiled(t).Text()))
}

func TestProfileJSONGolden(t *testing.T) {
	js, err := runProfiled(t).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(js) {
		t.Fatal("profile JSON invalid")
	}
	checkProfileGolden(t, "profile.json", js)
}

func TestProfileTextShape(t *testing.T) {
	text := runProfiled(t).Text()
	for _, want := range []string{"opcodes:", "cet:", "ibt-checks-passed", "shadow-pushes", "blocks:", "syscalls:", "write", "exit"} {
		if !strings.Contains(text, want) {
			t.Errorf("profile text missing %q:\n%s", want, text)
		}
	}
}

// TestHeatJSONGolden locks the versioned suri.heat.v1 export: schema
// tag present, rows count-descending with address tie-break, block and
// retired totals consistent with the profile.
func TestHeatJSONGolden(t *testing.T) {
	prof := runProfiled(t)
	js, err := prof.HeatJSON()
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Schema  string `json:"schema"`
		Retired uint64 `json:"retired"`
		Blocks  int    `json:"blocks"`
		Heat    []struct {
			Addr  uint64 `json:"addr"`
			Count uint64 `json:"count"`
		} `json:"heat"`
	}
	if err := json.Unmarshal(js, &out); err != nil {
		t.Fatal(err)
	}
	if out.Schema != HeatSchema {
		t.Fatalf("schema = %q, want %q", out.Schema, HeatSchema)
	}
	if out.Retired != prof.Retired() || out.Blocks != len(out.Heat) || out.Blocks == 0 {
		t.Fatalf("totals inconsistent: %+v (retired %d)", out, prof.Retired())
	}
	for i := 1; i < len(out.Heat); i++ {
		prev, cur := out.Heat[i-1], out.Heat[i]
		if cur.Count > prev.Count || (cur.Count == prev.Count && cur.Addr <= prev.Addr) {
			t.Fatalf("heat rows out of order at %d: %+v", i, out.Heat)
		}
	}
	checkProfileGolden(t, "heat.json", js)

	// An empty profile still emits the schema envelope with a [] array.
	empty, err := NewProfile().HeatJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(empty), HeatSchema) || !strings.Contains(string(empty), `"heat": []`) {
		t.Fatalf("empty heat export malformed:\n%s", empty)
	}
}
