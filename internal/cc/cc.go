// Package cc compiles MiniC modules (internal/mini) into CET-enabled
// x86-64 PIE ELF binaries. It is the repository's substitute for the
// GCC/Clang toolchains of the paper's benchmark (§4.1.1): four compiler
// styles × two linker layouts × six optimization levels reproduce the
// paper's 48 build configurations, and the generated code deliberately
// contains every symbolization pattern of Table 1 — including the
// composite-expression and jump-table traps of Figures 1–3 that defeat
// heuristic reassemblers.
package cc

import (
	"fmt"
	"strings"

	"repro/internal/mini"
)

// CompilerStyle selects the code-generation idioms of a real compiler.
type CompilerStyle int

// Compiler styles.
const (
	GCC11 CompilerStyle = iota
	GCC13
	Clang10
	Clang13
)

var compilerNames = [...]string{"gcc-11", "gcc-13", "clang-10", "clang-13"}

func (c CompilerStyle) String() string {
	if int(c) < len(compilerNames) {
		return compilerNames[c]
	}
	return fmt.Sprintf("CompilerStyle(%d)", int(c))
}

// IsGCC reports whether the style is a GCC variant.
func (c CompilerStyle) IsGCC() bool { return c == GCC11 || c == GCC13 }

// LinkerStyle selects the section layout of a linker.
type LinkerStyle int

// Linker styles.
const (
	LD LinkerStyle = iota
	Gold
)

func (l LinkerStyle) String() string {
	if l == LD {
		return "ld"
	}
	return "gold"
}

// OptLevel is an optimization level.
type OptLevel int

// Optimization levels.
const (
	O0 OptLevel = iota
	O1
	O2
	O3
	Os
	Ofast
)

var optNames = [...]string{"O0", "O1", "O2", "O3", "Os", "Ofast"}

func (o OptLevel) String() string {
	if int(o) < len(optNames) {
		return optNames[o]
	}
	return fmt.Sprintf("OptLevel(%d)", int(o))
}

// Config selects a full build configuration.
type Config struct {
	Compiler CompilerStyle
	Linker   LinkerStyle
	Opt      OptLevel

	// CET emits endbr64 markers and the IBT+SHSTK .note.gnu.property
	// (-fcf-protection). Enabled by default in modern distributions (§2.3).
	CET bool

	// EhFrame emits DWARF call-frame information. Disabling it models
	// -fno-asynchronous-unwind-tables (§4.3.3).
	EhFrame bool

	// ASan enables source-level address sanitization: per-array redzones
	// on the stack and around globals, with checks on every array access.
	// This is the "ASan" comparator of Table 5.
	ASan bool

	// Stripped omits the .symtab/.strtab sections, modeling a
	// production `strip`ped binary. Symbol tables are non-alloc
	// metadata the rewriter never reads, so soundness must be
	// unaffected — the Table 1 census is config-stable across this
	// axis, while symbol-dependent baselines degrade.
	Stripped bool
}

// DefaultConfig is the common modern build: CET on, unwind tables on.
func DefaultConfig() Config {
	return Config{Compiler: GCC11, Linker: LD, Opt: O2, CET: true, EhFrame: true}
}

// String names the configuration like "gcc-11/ld/O2".
func (c Config) String() string {
	s := fmt.Sprintf("%s/%s/%s", c.Compiler, c.Linker, c.Opt)
	if !c.CET {
		s += "/nocet"
	}
	if !c.EhFrame {
		s += "/nounwind"
	}
	if c.ASan {
		s += "/asan"
	}
	if c.Stripped {
		s += "/stripped"
	}
	return s
}

// ParseConfig parses the String() form back into a Config (the format
// surifuzz regression headers store). Unknown segments are errors.
func ParseConfig(s string) (Config, error) {
	var c Config
	c.CET = true
	c.EhFrame = true
	parts := strings.Split(s, "/")
	if len(parts) < 3 {
		return Config{}, fmt.Errorf("cc: config %q: want compiler/linker/opt", s)
	}
	switch parts[0] {
	case "gcc-11":
		c.Compiler = GCC11
	case "gcc-13":
		c.Compiler = GCC13
	case "clang-10":
		c.Compiler = Clang10
	case "clang-13":
		c.Compiler = Clang13
	default:
		return Config{}, fmt.Errorf("cc: config %q: unknown compiler %q", s, parts[0])
	}
	switch parts[1] {
	case "ld":
		c.Linker = LD
	case "gold":
		c.Linker = Gold
	default:
		return Config{}, fmt.Errorf("cc: config %q: unknown linker %q", s, parts[1])
	}
	opt := -1
	for i, n := range optNames {
		if n == parts[2] {
			opt = i
		}
	}
	if opt < 0 {
		return Config{}, fmt.Errorf("cc: config %q: unknown opt level %q", s, parts[2])
	}
	c.Opt = OptLevel(opt)
	for _, p := range parts[3:] {
		switch p {
		case "nocet":
			c.CET = false
		case "nounwind":
			c.EhFrame = false
		case "asan":
			c.ASan = true
		case "stripped":
			c.Stripped = true
		default:
			return Config{}, fmt.Errorf("cc: config %q: unknown flag %q", s, p)
		}
	}
	return c, nil
}

// AllConfigs returns the paper's 48 build configurations (4 compilers ×
// 2 linkers × 6 optimization levels), all CET-enabled PIEs with unwind
// tables.
func AllConfigs() []Config {
	var out []Config
	for _, comp := range []CompilerStyle{GCC11, GCC13, Clang10, Clang13} {
		for _, link := range []LinkerStyle{LD, Gold} {
			for _, opt := range []OptLevel{O0, O1, O2, O3, Os, Ofast} {
				out = append(out, Config{
					Compiler: comp, Linker: link, Opt: opt,
					CET: true, EhFrame: true,
				})
			}
		}
	}
	return out
}

// Compile translates a MiniC module into a complete ELF binary image.
func Compile(m *mini.Module, cfg Config) ([]byte, error) {
	g := newGen(m, cfg)
	prog, funcs, lsda, err := g.module()
	if err != nil {
		return nil, fmt.Errorf("cc: %s: %w", m.Name, err)
	}
	return link(prog, cfg, funcs, lsda)
}

// jumpTableThreshold returns the minimum number of dense cases before the
// style emits a jump table, or a huge number when tables are disabled.
func (c Config) jumpTableThreshold() int {
	switch {
	case c.Opt == O0:
		return 1 << 30 // -O0: if-else chains only
	case c.Opt == Os:
		return 8 // size-conscious: chains stay smaller
	case c.Compiler.IsGCC():
		return 5
	default:
		return 4 // clang switches to tables earlier
	}
}

// funcAlign returns the function alignment for the style.
func (c Config) funcAlign() uint64 {
	switch {
	case c.Opt == Os:
		return 4
	case c.Opt == O3 || c.Opt == Ofast:
		if c.Compiler.IsGCC() {
			return 32
		}
		return 16
	default:
		return 16
	}
}

// compositeAccess reports whether the optimizer folds cross-section
// anchor arithmetic into global accesses (the S7 pattern). Real compilers
// produce these at higher optimization levels when sections are addressed
// through shared base registers.
func (c Config) compositeAccess() bool {
	return c.Opt == O2 || c.Opt == O3 || c.Opt == Ofast
}

// jumpTableAlign returns the alignment of emitted jump tables.
func (c Config) jumpTableAlign() uint64 {
	if c.Compiler == GCC13 || c.Compiler == Clang13 {
		return 8
	}
	return 4
}
