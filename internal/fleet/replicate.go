package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/farm"
	"repro/internal/obs"
)

// Successor replication: after a forwarded rewrite executes, the
// coordinator pushes the artifact to the next Replicate ring successors
// of the worker that produced it (PUT /cache on each), so the key's
// whole failover chain can serve it as a cache hit. Replication is
// asynchronous and advisory — the serving path only enqueues; a full
// queue drops the push and counts it, and a failed push costs nothing
// but a future recompute.

// replicaPushTimeout bounds one PUT /cache hop. Generous: a replica
// push races nothing and blocks nobody.
const replicaPushTimeout = 15 * time.Second

// replJob is one artifact awaiting replication to the successors of
// origin (the worker name that executed it).
type replJob struct {
	key    farm.Key
	art    *farm.Artifact
	origin string
}

// enqueueReplica hands an executed artifact to the replication loop.
// Never blocks: drop-and-count on overload.
func (c *Coordinator) enqueueReplica(key farm.Key, art *farm.Artifact, origin string, rc *obs.Collector) {
	if c.replCh == nil {
		return
	}
	select {
	case c.replCh <- replJob{key: key, art: art, origin: origin}:
	default:
		c.reg.Counter("fleet.replica_dropped").Inc()
		rc.Record(obs.Event{Kind: "fleet", Name: "replica_dropped", Detail: origin})
	}
}

// replicateLoop drains the replication queue until Close.
func (c *Coordinator) replicateLoop() {
	defer close(c.replDone)
	for {
		select {
		case <-c.stop:
			return
		case rj := <-c.replCh:
			c.pushReplicas(rj)
		}
	}
}

// replicaTargets picks the workers that should hold a copy of key: the
// first Replicate ring owners after (excluding) the origin worker.
// Owners walks alive members only, so a dying successor is skipped
// rather than retried.
func (c *Coordinator) replicaTargets(key farm.Key, origin string) []*worker {
	c.mu.Lock()
	names := c.ring.Owners(HashKey(key), c.opts.Replicate+1)
	c.mu.Unlock()
	out := make([]*worker, 0, c.opts.Replicate)
	for _, name := range names {
		if name == origin || len(out) == c.opts.Replicate {
			continue
		}
		if w := c.workerByName(name); w != nil && w.getState() == workerAlive {
			out = append(out, w)
		}
	}
	return out
}

// pushReplicas sends one artifact to each replica target, marshaling
// the envelope once.
func (c *Coordinator) pushReplicas(rj replJob) {
	targets := c.replicaTargets(rj.key, rj.origin)
	if len(targets) == 0 {
		return
	}
	payload, err := json.Marshal(farm.NewPushArtifact(rj.art))
	if err != nil {
		c.reg.Counter("fleet.replica_errors").Inc()
		return
	}
	for _, w := range targets {
		if err := c.pushTo(w, rj.key, payload); err != nil {
			c.reg.Counter("fleet.replica_errors").Inc()
			c.col.Record(obs.Event{Kind: "fleet", Name: "replica_error", Detail: w.name + ": " + err.Error()})
			if c.opts.ErrorLog != nil {
				c.opts.ErrorLog.Printf("fleet: replica push to %s (%s): %v", w.name, w.url, err)
			}
			continue
		}
		c.reg.Counter("fleet.replicas_pushed").Inc()
		c.col.Record(obs.Event{Kind: "fleet", Name: "replica_pushed", Detail: w.name})
	}
}

// pushTo performs one PUT /cache hop to one worker.
func (c *Coordinator) pushTo(w *worker, key farm.Key, payload []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), replicaPushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, w.url+"/cache?key="+key.String(), bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("fleet: replica push to %s: status %d", w.name, resp.StatusCode)
	}
	return nil
}
