package asm

import (
	"math/rand"
	"testing"
)

// The incremental-vs-legacy assembler pair; scripts/bench.sh captures
// the whole-pipeline version of this in BENCH_perf.json.
func benchProgram() *Program { return randomProgram(rand.New(rand.NewSource(3)), 4000) }

func BenchmarkAssemble(b *testing.B) {
	p := benchProgram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(p, 0x1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssembleLegacy(b *testing.B) {
	p := benchProgram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AssembleLegacy(p, 0x1000); err != nil {
			b.Fatal(err)
		}
	}
}
