// Package baseline defines the shared surface of the comparison
// reassemblers (§4.1.3): the Ddisasm-like heuristic rewriter and the
// Egalito-like metadata-driven rewriter. Both rediscover the published
// failure modes of their real counterparts organically — from their
// policies, not from injected faults.
package baseline

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/serialize"
)

// Entry aliases the serialized-code element shared with the SURI
// pipeline.
type Entry = serialize.Entry

// Result is a completed baseline rewrite.
type Result struct {
	Binary []byte
}

// Rewriter is a binary rewriter comparable to SURI.
type Rewriter interface {
	// Name identifies the tool in evaluation tables.
	Name() string

	// Rewrite rewrites a binary image or fails (completion-rate metric).
	Rewrite(bin []byte) (*Result, error)
}

// AttachLabelAt gives the serialized entry copying the original
// instruction at addr an extra label and returns it. The second result is
// false when addr is not an instruction boundary in the stream — the
// "invalid label" condition real reassemblers report.
func AttachLabelAt(entries []Entry, index map[uint64]int, addr uint64) (string, bool) {
	i, ok := index[addr]
	if !ok {
		return "", false
	}
	lbl := fmt.Sprintf("LD_%x", addr)
	for _, l := range entries[i].Labels {
		if l == lbl {
			return lbl, true
		}
	}
	entries[i].Labels = append(entries[i].Labels, lbl)
	return lbl, true
}

// IndexByAddr maps original instruction addresses to entry indices.
func IndexByAddr(entries []Entry) map[uint64]int {
	out := make(map[uint64]int, len(entries))
	for i, e := range entries {
		if !e.Synth && e.Addr != 0 {
			out[e.Addr] = i
		}
	}
	return out
}

// OverlapError reports byte-overlapping blocks, which single-
// interpretation reassemblers cannot represent in their output assembly.
func OverlapError(g *cfg.Graph) error {
	blocks := g.SortedBlocks()
	for i := 1; i < len(blocks); i++ {
		prev := blocks[i-1]
		if prev.End() > blocks[i].Addr {
			return fmt.Errorf("conflicting code interpretations at %#x and %#x",
				prev.Addr, blocks[i].Addr)
		}
	}
	return nil
}
